//! The sorted in-memory write buffer of the LSM engine.
//!
//! [`MemTable`] is the single sorted buffer; [`ShardedMemTable`] hash-shards
//! it into N independent skeletons with per-shard locks so concurrent write
//! batches touching different shards never contend, while keeping one shared
//! byte budget and a single sorted drain for SSTable flushes.

use std::collections::BTreeMap;

use parking_lot::{Mutex, MutexGuard};

/// An entry is either a live value or a tombstone.
pub type Entry = Option<Vec<u8>>;

/// Sorted in-memory buffer of recent writes. Not internally synchronised — the
/// store wraps it in a lock.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<u64, Entry>,
    bytes: usize,
}

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a live value.
    pub fn put(&mut self, key: u64, value: Vec<u8>) {
        self.account_remove(key);
        self.bytes += 8 + value.len();
        self.map.insert(key, Some(value));
    }

    /// Insert a tombstone.
    pub fn delete(&mut self, key: u64) {
        self.account_remove(key);
        self.bytes += 8;
        self.map.insert(key, None);
    }

    fn account_remove(&mut self, key: u64) {
        if let Some(old) = self.map.get(&key) {
            self.bytes -= 8 + old.as_ref().map(|v| v.len()).unwrap_or(0);
        }
    }

    /// Look up `key`. `None` = not present at all; `Some(None)` = tombstoned.
    pub fn get(&self, key: u64) -> Option<&Entry> {
        self.map.get(&key)
    }

    /// Approximate heap usage of the buffered entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of buffered entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Entry)> {
        self.map.iter()
    }

    /// Drain the memtable into a sorted vector (used when flushing to an
    /// SSTable), leaving it empty.
    pub fn drain_sorted(&mut self) -> Vec<(u64, Entry)> {
        self.bytes = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }

    /// Re-insert entries drained by [`MemTable::drain_sorted`] (used to roll
    /// back a failed flush).
    pub fn restore(&mut self, entries: Vec<(u64, Entry)>) {
        for (key, entry) in entries {
            match entry {
                Some(value) => self.put(key, value),
                None => self.delete(key),
            }
        }
    }
}

/// Hash-sharded memtable: N independent [`MemTable`] skeletons, each behind
/// its own lock. A key always hashes to the same shard, so per-key ordering is
/// preserved as long as each shard's operations run in batch order — the same
/// contract [`mlkv_storage::exec::BatchExecutor`] jobs already rely on.
///
/// The budget is shared: [`ShardedMemTable::bytes`] sums the shards, and the
/// store flushes *all* shards into one SSTable pass when the total crosses its
/// threshold, so SST/WAL rotation ordering is identical to the single-shard
/// engine.
#[derive(Debug)]
pub struct ShardedMemTable {
    shards: Vec<Mutex<MemTable>>,
}

impl ShardedMemTable {
    /// Create an empty sharded memtable with `shards` skeletons (at least 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(MemTable::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` hashes to.
    pub fn shard_of(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h as usize) % self.shards.len()
    }

    /// Lock shard `idx`.
    pub fn lock_shard(&self, idx: usize) -> MutexGuard<'_, MemTable> {
        self.shards[idx].lock()
    }

    /// Lock the shards named by `idxs` (must be sorted ascending and unique —
    /// the fixed acquisition order that keeps concurrent batches deadlock-free).
    pub fn lock_shards(&self, idxs: &[usize]) -> Vec<MutexGuard<'_, MemTable>> {
        debug_assert!(idxs.windows(2).all(|w| w[0] < w[1]));
        idxs.iter().map(|&i| self.shards[i].lock()).collect()
    }

    /// Group the positions of `keys` by shard, preserving input order within
    /// each shard so duplicate keys are processed in occurrence order.
    pub fn positions_by_shard(&self, keys: &[u64]) -> Vec<Vec<usize>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            by_shard[self.shard_of(*key)].push(i);
        }
        by_shard
    }

    /// Look up `key`, cloning the entry out of its shard.
    /// `None` = not present at all; `Some(None)` = tombstoned.
    pub fn get(&self, key: u64) -> Option<Entry> {
        self.shards[self.shard_of(key)].lock().get(key).cloned()
    }

    /// Total approximate heap usage across all shards (the shared budget).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes()).sum()
    }

    /// Total buffered entries (including tombstones) across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no shard buffers any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Drain every shard into one key-sorted vector (the single SSTable flush
    /// pass), leaving all shards empty. Keys are unique across shards, so a
    /// sort of the concatenation is a true merge.
    pub fn drain_sorted(&self) -> Vec<(u64, Entry)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.append(&mut shard.lock().drain_sorted());
        }
        all.sort_unstable_by_key(|(k, _)| *k);
        all
    }

    /// Re-insert entries drained by [`ShardedMemTable::drain_sorted`] (rolls
    /// back a failed flush).
    pub fn restore(&self, entries: Vec<(u64, Entry)>) {
        for (key, entry) in entries {
            let mut shard = self.shards[self.shard_of(key)].lock();
            match entry {
                Some(value) => shard.put(key, value),
                None => shard.delete(key),
            }
        }
    }

    /// Clone all entries into one key-sorted vector without draining (used by
    /// replication snapshots).
    pub fn snapshot_sorted(&self) -> Vec<(u64, Entry)> {
        let mut all: Vec<(u64, Entry)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            all.extend(shard.iter().map(|(k, e)| (*k, e.clone())));
        }
        all.sort_unstable_by_key(|(k, _)| *k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut mt = MemTable::new();
        assert!(mt.is_empty());
        mt.put(1, vec![1, 2, 3]);
        mt.put(2, vec![4]);
        mt.delete(3);
        assert_eq!(mt.get(1), Some(&Some(vec![1, 2, 3])));
        assert_eq!(mt.get(3), Some(&None));
        assert_eq!(mt.get(4), None);
        assert_eq!(mt.len(), 3);
    }

    #[test]
    fn byte_accounting_tracks_overwrites() {
        let mut mt = MemTable::new();
        mt.put(1, vec![0; 100]);
        assert_eq!(mt.bytes(), 108);
        mt.put(1, vec![0; 10]);
        assert_eq!(mt.bytes(), 18);
        mt.delete(1);
        assert_eq!(mt.bytes(), 8);
    }

    #[test]
    fn drain_returns_sorted_entries_and_clears() {
        let mut mt = MemTable::new();
        mt.put(5, vec![5]);
        mt.put(1, vec![1]);
        mt.delete(3);
        let drained = mt.drain_sorted();
        let keys: Vec<u64> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert!(mt.is_empty());
        assert_eq!(mt.bytes(), 0);
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut mt = MemTable::new();
        for k in [9u64, 2, 7, 4] {
            mt.put(k, vec![k as u8]);
        }
        let keys: Vec<u64> = mt.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 4, 7, 9]);
    }

    #[test]
    fn sharded_drain_merges_sorted_across_shards() {
        let mt = ShardedMemTable::new(4);
        for k in [9u64, 2, 7, 4, 11, 0] {
            mt.lock_shard(mt.shard_of(k)).put(k, vec![k as u8]);
        }
        mt.lock_shard(mt.shard_of(5)).delete(5);
        assert_eq!(mt.len(), 7);
        assert_eq!(mt.bytes(), 6 * 9 + 8);
        let snap: Vec<u64> = mt.snapshot_sorted().iter().map(|(k, _)| *k).collect();
        assert_eq!(snap, vec![0, 2, 4, 5, 7, 9, 11]);
        let drained = mt.drain_sorted();
        let keys: Vec<u64> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![0, 2, 4, 5, 7, 9, 11]);
        assert_eq!(drained[3], (5, None), "tombstones survive the drain");
        assert!(mt.is_empty());
        assert_eq!(mt.bytes(), 0);
        mt.restore(drained);
        assert_eq!(mt.len(), 7);
        assert_eq!(mt.get(5), Some(None), "restore keeps tombstones");
        assert_eq!(mt.get(9), Some(Some(vec![9])));
        assert_eq!(mt.get(100), None);
    }

    #[test]
    fn sharded_positions_group_by_shard_in_input_order() {
        let mt = ShardedMemTable::new(4);
        let keys = [5u64, 100, 0, 5, 19, 5];
        let groups = mt.positions_by_shard(&keys);
        assert_eq!(groups.len(), 4);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        // All occurrences of a duplicate key land in one group, in order.
        let five = mt.shard_of(5);
        let dup_positions: Vec<usize> = groups[five]
            .iter()
            .copied()
            .filter(|&i| keys[i] == 5)
            .collect();
        assert_eq!(dup_positions, vec![0, 3, 5]);
    }

    #[test]
    fn single_shard_degenerates_to_one_memtable() {
        let mt = ShardedMemTable::new(0);
        assert_eq!(mt.shard_count(), 1);
        for k in 0..16u64 {
            assert_eq!(mt.shard_of(k), 0);
        }
    }
}
