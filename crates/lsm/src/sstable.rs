//! Immutable sorted-string tables.
//!
//! Layout of one SSTable on its device:
//!
//! ```text
//! [ data section  : (key u64 | tombstone u8 | vlen u32 | value bytes)* ]
//! [ index section : (key u64 | data offset u64)*                       ]
//! [ bloom section : serialized BloomFilter                             ]
//! [ footer        : data_len | index_len | bloom_len | count | magic   ]
//! ```
//!
//! The index and bloom filter are kept in memory once the table is opened; point
//! reads binary-search the index and issue exactly one device read for the whole
//! entry (its size is known from the next index entry, so header and value never
//! need separate reads). Batched probes go further: one coalesced scatter per
//! table covers every admitted key of the batch ([`SsTable::get_many`]).

use std::sync::Arc;

use mlkv_storage::{
    Device, IoPlanner, PendingRead, ReadReq, StorageError, StorageMetrics, StorageResult,
};

use crate::bloom::BloomFilter;
use crate::memtable::Entry;

const FOOTER_LEN: usize = 40;
const MAGIC: u64 = 0x4D4C_4B56_5353_5442; // "MLKVSSTB"
/// Fixed per-entry prefix: key (8) + tombstone flag (1) + value length (4).
const ENTRY_HEADER_LEN: usize = 13;

/// An opened, immutable SSTable.
pub struct SsTable {
    device: Arc<dyn Device>,
    planner: IoPlanner,
    /// Sorted keys with their offsets into the data section.
    index: Vec<(u64, u64)>,
    bloom: BloomFilter,
    data_len: u64,
    /// Sequence number: higher = newer (used to order reads across tables).
    pub seq: u64,
}

impl SsTable {
    /// Write `entries` (sorted by key, deduplicated) to `device` and return the
    /// opened table. `seq` orders tables from oldest to newest.
    pub fn build(
        device: Arc<dyn Device>,
        planner: IoPlanner,
        entries: &[(u64, Entry)],
        seq: u64,
        metrics: &StorageMetrics,
    ) -> StorageResult<Self> {
        let mut data = Vec::new();
        let mut index = Vec::with_capacity(entries.len());
        let mut bloom = BloomFilter::new(entries.len(), 10);
        for (key, entry) in entries {
            index.push((*key, data.len() as u64));
            bloom.insert(*key);
            data.extend_from_slice(&key.to_le_bytes());
            match entry {
                Some(value) => {
                    data.push(0);
                    data.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    data.extend_from_slice(value);
                }
                None => {
                    data.push(1);
                    data.extend_from_slice(&0u32.to_le_bytes());
                }
            }
        }
        let mut index_bytes = Vec::with_capacity(index.len() * 16);
        for (k, off) in &index {
            index_bytes.extend_from_slice(&k.to_le_bytes());
            index_bytes.extend_from_slice(&off.to_le_bytes());
        }
        let bloom_bytes = bloom.encode();
        let mut file =
            Vec::with_capacity(data.len() + index_bytes.len() + bloom_bytes.len() + FOOTER_LEN);
        file.extend_from_slice(&data);
        file.extend_from_slice(&index_bytes);
        file.extend_from_slice(&bloom_bytes);
        file.extend_from_slice(&(data.len() as u64).to_le_bytes());
        file.extend_from_slice(&(index_bytes.len() as u64).to_le_bytes());
        file.extend_from_slice(&(bloom_bytes.len() as u64).to_le_bytes());
        file.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        file.extend_from_slice(&MAGIC.to_le_bytes());
        device.write_at(0, &file)?;
        metrics.record_disk_write(file.len() as u64);
        Ok(Self {
            device,
            planner,
            index,
            bloom,
            data_len: data.len() as u64,
            seq,
        })
    }

    /// Open an existing table from `device`.
    pub fn open(device: Arc<dyn Device>, planner: IoPlanner, seq: u64) -> StorageResult<Self> {
        let total = device.len();
        if total < FOOTER_LEN as u64 {
            return Err(StorageError::Corruption("sstable too small".into()));
        }
        let mut footer = [0u8; FOOTER_LEN];
        device.read_at(total - FOOTER_LEN as u64, &mut footer)?;
        let word = |i: usize| u64::from_le_bytes(footer[i * 8..(i + 1) * 8].try_into().unwrap());
        if word(4) != MAGIC {
            return Err(StorageError::Corruption("bad sstable magic".into()));
        }
        let (data_len, index_len, bloom_len, count) = (word(0), word(1), word(2), word(3));
        let mut index_bytes = vec![0u8; index_len as usize];
        device.read_at(data_len, &mut index_bytes)?;
        let mut index = Vec::with_capacity(count as usize);
        for chunk in index_bytes.chunks_exact(16) {
            index.push((
                u64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                u64::from_le_bytes(chunk[8..16].try_into().unwrap()),
            ));
        }
        let mut bloom_bytes = vec![0u8; bloom_len as usize];
        device.read_at(data_len + index_len, &mut bloom_bytes)?;
        let bloom = BloomFilter::decode(&bloom_bytes)
            .ok_or_else(|| StorageError::Corruption("bad bloom filter".into()))?;
        Ok(Self {
            device,
            planner,
            index,
            bloom,
            data_len,
            seq,
        })
    }

    /// Harden the table to stable storage. Called after `build` and *before*
    /// the WAL (or compaction inputs) covering these entries is removed, so a
    /// crash can never leave the entries in neither place.
    pub fn sync(&self) -> StorageResult<()> {
        self.device.sync()
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Smallest and largest key, when non-empty.
    pub fn key_range(&self) -> Option<(u64, u64)> {
        match (self.index.first(), self.index.last()) {
            (Some((lo, _)), Some((hi, _))) => Some((*lo, *hi)),
            _ => None,
        }
    }

    /// True when the bloom filter admits the key.
    pub fn may_contain(&self, key: u64) -> bool {
        self.bloom.may_contain(key)
    }

    /// Membership probe without reading the value: `Ok(None)` when the key is
    /// not in this table, `Ok(Some(true))` when it is live here,
    /// `Ok(Some(false))` when it is tombstoned here. Costs at most one
    /// 13-byte header read (and nothing at all when the bloom filter or the
    /// in-memory index rejects the key).
    pub fn contains(&self, key: u64, metrics: &StorageMetrics) -> StorageResult<Option<bool>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Ok(pos) = self.index.binary_search_by_key(&key, |(k, _)| *k) else {
            return Ok(None);
        };
        let mut header = [0u8; ENTRY_HEADER_LEN];
        self.device.read_at(self.index[pos].1, &mut header)?;
        metrics.record_background_disk_read(ENTRY_HEADER_LEN as u64);
        Ok(Some(header[8] == 0))
    }

    /// Byte length of the entry at index position `pos`: the distance to the
    /// next entry's offset (or to the end of the data section for the last
    /// entry). Knowing the exact size from the in-memory index lets point
    /// reads fetch header + value in **one** device read.
    fn entry_len(&self, pos: usize) -> usize {
        let end = self
            .index
            .get(pos + 1)
            .map_or(self.data_len, |(_, off)| *off);
        (end - self.index[pos].1) as usize
    }

    /// Index position of `key` if both the bloom filter and the in-memory
    /// index admit it (no device I/O).
    fn probe(&self, key: u64) -> Option<usize> {
        if !self.bloom.may_contain(key) {
            return None;
        }
        self.index.binary_search_by_key(&key, |(k, _)| *k).ok()
    }

    /// Decode the entry bytes at index position `pos`, verifying the key.
    fn decode_entry(&self, pos: usize, key: u64, bytes: &[u8]) -> StorageResult<Entry> {
        if bytes.len() < ENTRY_HEADER_LEN {
            return Err(StorageError::Corruption(format!(
                "sstable entry for {key} truncated: {} bytes",
                bytes.len()
            )));
        }
        let stored_key = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        if stored_key != key {
            return Err(StorageError::Corruption(format!(
                "sstable index points to wrong key: {stored_key} != {key}"
            )));
        }
        let tombstone = bytes[8] == 1;
        let vlen = u32::from_le_bytes(bytes[9..13].try_into().unwrap()) as usize;
        if ENTRY_HEADER_LEN + vlen > self.entry_len(pos) {
            return Err(StorageError::Corruption(format!(
                "sstable entry for {key} overruns its index slot"
            )));
        }
        if tombstone {
            return Ok(None);
        }
        Ok(Some(
            bytes[ENTRY_HEADER_LEN..ENTRY_HEADER_LEN + vlen].to_vec(),
        ))
    }

    /// Point lookup. `Ok(None)` when the key is not in this table;
    /// `Ok(Some(None))` when the key is tombstoned here. Costs exactly one
    /// device read sized from the index entry (the pre-scatter path read the
    /// 13-byte header and the value separately).
    pub fn get(&self, key: u64, metrics: &StorageMetrics) -> StorageResult<Option<Entry>> {
        let Some(pos) = self.probe(key) else {
            return Ok(None);
        };
        let len = self.entry_len(pos);
        let mut bytes = vec![0u8; len];
        self.device.read_at(self.index[pos].1, &mut bytes)?;
        metrics.record_background_disk_read(len as u64);
        self.decode_entry(pos, key, &bytes).map(Some)
    }

    /// Submit one coalesced scatter for every key of the batch this table
    /// admits (bloom + index reject the rest without I/O) and return a handle
    /// to finish the pass with. Under the async backend the scatter's merged
    /// reads overlap each other in the device while the caller works —
    /// [`crate::store::LsmStore`] uses the window to finish the *previous*
    /// table pass's bookkeeping, pipelining the passes.
    pub fn submit_get_many(&self, keys: Vec<u64>) -> PendingTableGets<'_> {
        let mut out: Vec<Option<StorageResult<Option<Entry>>>> =
            keys.iter().map(|_| None).collect();
        let mut slots: Vec<(usize, usize)> = Vec::new(); // (input slot, index pos)
        let mut reqs: Vec<ReadReq> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            match self.probe(key) {
                Some(pos) => {
                    slots.push((i, pos));
                    reqs.push(ReadReq::new(self.index[pos].1, self.entry_len(pos)));
                }
                None => out[i] = Some(Ok(None)),
            }
        }
        let pending = self.planner.submit(self.device.as_ref(), reqs);
        PendingTableGets {
            table: self,
            keys,
            slots,
            out,
            pending,
        }
    }

    /// Batched point lookups: one coalesced scatter fetches every key of the
    /// batch this table admits. Result slots mirror [`SsTable::get`].
    pub fn get_many(
        &self,
        keys: &[u64],
        metrics: &StorageMetrics,
    ) -> Vec<StorageResult<Option<Entry>>> {
        self.submit_get_many(keys.to_vec()).wait(metrics)
    }

    /// Read every entry in key order (used by compaction).
    pub fn scan_all(&self, metrics: &StorageMetrics) -> StorageResult<Vec<(u64, Entry)>> {
        let mut data = vec![0u8; self.data_len as usize];
        if self.data_len > 0 {
            self.device.read_at(0, &mut data)?;
            metrics.record_background_disk_read(self.data_len);
        }
        let mut out = Vec::with_capacity(self.index.len());
        let mut pos = 0usize;
        while pos + 13 <= data.len() {
            let key = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
            let tombstone = data[pos + 8] == 1;
            let vlen = u32::from_le_bytes(data[pos + 9..pos + 13].try_into().unwrap()) as usize;
            pos += 13;
            if tombstone {
                out.push((key, None));
            } else {
                out.push((key, Some(data[pos..pos + vlen].to_vec())));
                pos += vlen;
            }
        }
        Ok(out)
    }
}

/// One table pass's coalesced scatter in flight ([`SsTable::submit_get_many`]).
pub struct PendingTableGets<'a> {
    table: &'a SsTable,
    /// Probed keys (taken by value — each pass builds its own probe list).
    keys: Vec<u64>,
    /// `(input slot, index position)` of every admitted key.
    slots: Vec<(usize, usize)>,
    /// Per-slot results; bloom/index rejects resolve at submit time.
    out: Vec<Option<StorageResult<Option<Entry>>>>,
    pending: PendingRead,
}

impl PendingTableGets<'_> {
    /// True once waiting would not park.
    pub fn try_complete(&self) -> bool {
        self.pending.try_complete()
    }

    /// Finish the pass: park on the scatter, then decode every admitted
    /// key's entry. A failed merged read falls back to per-key point gets so
    /// each slot surfaces its own result.
    pub fn wait(self, metrics: &StorageMetrics) -> Vec<StorageResult<Option<Entry>>> {
        let Self {
            table,
            keys,
            slots,
            mut out,
            pending,
        } = self;
        match pending.wait() {
            Err(_) => {
                for &(i, _) in &slots {
                    out[i] = Some(table.get(keys[i], metrics));
                }
            }
            Ok(reqs) => {
                for ((i, pos), req) in slots.into_iter().zip(&reqs) {
                    metrics.record_background_disk_read(req.buf.len() as u64);
                    out[i] = Some(table.decode_entry(pos, keys[i], &req.buf).map(Some));
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::MemDevice;

    fn build_table(entries: &[(u64, Entry)]) -> SsTable {
        let device = Arc::new(MemDevice::new());
        let metrics = StorageMetrics::new();
        SsTable::build(device, IoPlanner::default(), entries, 1, &metrics).unwrap()
    }

    #[test]
    fn build_and_get_roundtrip() {
        let entries: Vec<(u64, Entry)> = (0..100u64)
            .map(|k| (k * 2, Some(vec![k as u8; 16])))
            .collect();
        let table = build_table(&entries);
        let metrics = StorageMetrics::new();
        assert_eq!(table.len(), 100);
        assert_eq!(table.key_range(), Some((0, 198)));
        assert_eq!(table.get(10, &metrics).unwrap(), Some(Some(vec![5u8; 16])));
        // Key absent (odd keys were never inserted).
        assert_eq!(table.get(11, &metrics).unwrap(), None);
    }

    #[test]
    fn tombstones_are_preserved() {
        let entries: Vec<(u64, Entry)> = vec![(1, Some(vec![1])), (2, None), (3, Some(vec![3]))];
        let table = build_table(&entries);
        let metrics = StorageMetrics::new();
        assert_eq!(table.get(2, &metrics).unwrap(), Some(None));
        assert_eq!(table.get(1, &metrics).unwrap(), Some(Some(vec![1])));
    }

    #[test]
    fn contains_distinguishes_live_tombstoned_and_absent() {
        let entries: Vec<(u64, Entry)> = vec![(1, Some(vec![1])), (2, None)];
        let table = build_table(&entries);
        let metrics = StorageMetrics::new();
        assert_eq!(table.contains(1, &metrics).unwrap(), Some(true));
        assert_eq!(table.contains(2, &metrics).unwrap(), Some(false));
        assert_eq!(table.contains(3, &metrics).unwrap(), None);
    }

    #[test]
    fn open_reads_back_a_built_table() {
        let device = Arc::new(MemDevice::new());
        let metrics = StorageMetrics::new();
        let entries: Vec<(u64, Entry)> = (0..50u64).map(|k| (k, Some(vec![k as u8]))).collect();
        SsTable::build(
            Arc::clone(&device) as Arc<dyn Device>,
            IoPlanner::default(),
            &entries,
            7,
            &metrics,
        )
        .unwrap();
        let reopened = SsTable::open(device, IoPlanner::default(), 7).unwrap();
        assert_eq!(reopened.len(), 50);
        assert_eq!(reopened.get(49, &metrics).unwrap(), Some(Some(vec![49])));
        assert_eq!(reopened.seq, 7);
    }

    #[test]
    fn open_rejects_garbage() {
        let device = Arc::new(MemDevice::new());
        device.append(b"not an sstable").unwrap();
        assert!(SsTable::open(device, IoPlanner::default(), 0).is_err());
        let empty = Arc::new(MemDevice::new());
        assert!(SsTable::open(empty, IoPlanner::default(), 0).is_err());
    }

    #[test]
    fn scan_all_returns_everything_in_order() {
        let entries: Vec<(u64, Entry)> = vec![(1, Some(vec![9; 3])), (5, None), (9, Some(vec![]))];
        let table = build_table(&entries);
        let metrics = StorageMetrics::new();
        assert_eq!(table.scan_all(&metrics).unwrap(), entries);
    }

    #[test]
    fn get_many_matches_get_and_counts_exact_bytes() {
        let entries: Vec<(u64, Entry)> = (0..100u64)
            .map(|k| {
                if k % 7 == 0 {
                    (k * 2, None)
                } else {
                    (k * 2, Some(vec![k as u8; (k % 31) as usize]))
                }
            })
            .collect();
        let table = build_table(&entries);
        // Mixed probe set: present keys, tombstones, absences, duplicates.
        let probes: Vec<u64> = vec![0, 198, 7, 4, 4, 14, 1_000];
        let per_key = StorageMetrics::new();
        let batched = StorageMetrics::new();
        let want: Vec<_> = probes.iter().map(|&k| table.get(k, &per_key)).collect();
        let got = table.get_many(&probes, &batched);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.as_ref().unwrap(), g.as_ref().unwrap());
        }
        // Bytes accounted identically: one entry-sized read per admitted key.
        assert_eq!(
            per_key.snapshot().disk_read_bytes,
            batched.snapshot().disk_read_bytes
        );
        assert_eq!(per_key.snapshot().disk_reads, batched.snapshot().disk_reads);
    }

    #[test]
    fn empty_table_behaves() {
        let table = build_table(&[]);
        let metrics = StorageMetrics::new();
        assert!(table.is_empty());
        assert_eq!(table.key_range(), None);
        assert_eq!(table.get(1, &metrics).unwrap(), None);
        assert!(table.scan_all(&metrics).unwrap().is_empty());
    }
}
