//! A blocked bloom filter over `u64` keys.
//!
//! Each SSTable carries one so that point reads can skip tables that cannot
//! contain the key — the standard RocksDB mitigation for read amplification.

/// Bloom filter with `k` hash functions derived from two independent 64-bit
/// hashes (Kirsch–Mitzenmacher double hashing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl BloomFilter {
    /// Create a filter sized for `expected_items` with roughly
    /// `bits_per_key` bits per key (10 gives ~1% false positives).
    pub fn new(expected_items: usize, bits_per_key: usize) -> Self {
        let num_bits = (expected_items.max(1) * bits_per_key.max(1)).max(64) as u64;
        let num_words = num_bits.div_ceil(64) as usize;
        // Optimal k = ln(2) * bits_per_key, clamped to a sane range.
        let num_hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 12);
        Self {
            bits: vec![0; num_words],
            num_bits: num_words as u64 * 64,
            num_hashes,
        }
    }

    #[inline]
    fn hashes(key: u64) -> (u64, u64) {
        let h1 = key.wrapping_mul(0xff51_afd7_ed55_8ccd) ^ (key >> 33);
        let h2 = key.wrapping_mul(0xc4ce_b9fe_1a85_ec53) ^ (key >> 29) | 1;
        (h1, h2)
    }

    /// Add `key` to the filter.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = Self::hashes(key);
        for i in 0..self.num_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// True when `key` *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: u64) -> bool {
        let (h1, h2) = Self::hashes(key);
        for i in 0..self.num_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serialize the filter.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&self.num_hashes.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize a filter produced by [`BloomFilter::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 12 {
            return None;
        }
        let num_bits = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let num_hashes = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        let words = (num_bits / 64) as usize;
        if bytes.len() < 12 + words * 8 {
            return None;
        }
        let bits = (0..words)
            .map(|i| u64::from_le_bytes(bytes[12 + i * 8..20 + i * 8].try_into().unwrap()))
            .collect();
        Some(Self {
            bits,
            num_bits,
            num_hashes,
        })
    }

    /// Serialized length in bytes.
    pub fn encoded_len(&self) -> usize {
        12 + self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1000, 10);
        for k in 0..1000u64 {
            bf.insert(k * 7 + 3);
        }
        for k in 0..1000u64 {
            assert!(bf.may_contain(k * 7 + 3));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut bf = BloomFilter::new(2000, 10);
        for k in 0..2000u64 {
            bf.insert(k);
        }
        let false_positives = (1_000_000..1_010_000u64)
            .filter(|k| bf.may_contain(*k))
            .count();
        // 10 bits/key gives ~1%; allow generous slack.
        assert!(
            false_positives < 500,
            "false positive rate too high: {false_positives}/10000"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut bf = BloomFilter::new(100, 10);
        for k in 0..100u64 {
            bf.insert(k);
        }
        let decoded = BloomFilter::decode(&bf.encode()).unwrap();
        assert_eq!(decoded, bf);
        assert_eq!(bf.encode().len(), bf.encoded_len());
        assert!(BloomFilter::decode(&[1, 2, 3]).is_none());
    }

    #[test]
    fn empty_filter_contains_nothing_definitively() {
        let bf = BloomFilter::new(10, 10);
        assert!(!bf.may_contain(42));
    }

    #[test]
    fn tiny_expected_items_still_works() {
        let mut bf = BloomFilter::new(0, 0);
        bf.insert(1);
        assert!(bf.may_contain(1));
    }
}
