//! Write-ahead log for the LSM engine.
//!
//! Every mutation is appended to the WAL before it is applied to the memtable so
//! that the memtable's contents can be recovered after a crash. The WAL is
//! truncated (rotated) whenever the memtable is flushed into an SSTable.

use std::sync::Arc;

use mlkv_storage::{Device, StorageMetrics, StorageResult};

use crate::memtable::Entry;

/// Operation tags in the log.
const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Append-only write-ahead log.
pub struct WriteAheadLog {
    device: Arc<dyn Device>,
    sync_writes: bool,
}

impl WriteAheadLog {
    /// Wrap a device as a WAL.
    pub fn new(device: Arc<dyn Device>, sync_writes: bool) -> Self {
        Self {
            device,
            sync_writes,
        }
    }

    /// Append a put record.
    pub fn log_put(&self, key: u64, value: &[u8], metrics: &StorageMetrics) -> StorageResult<()> {
        let mut rec = Vec::with_capacity(13 + value.len());
        rec.push(OP_PUT);
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
        rec.extend_from_slice(value);
        self.device.append(&rec)?;
        metrics.record_disk_write(rec.len() as u64);
        if self.sync_writes {
            self.device.sync()?;
        }
        Ok(())
    }

    /// Append a delete record.
    pub fn log_delete(&self, key: u64, metrics: &StorageMetrics) -> StorageResult<()> {
        let mut rec = Vec::with_capacity(13);
        rec.push(OP_DELETE);
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&0u32.to_le_bytes());
        self.device.append(&rec)?;
        metrics.record_disk_write(rec.len() as u64);
        if self.sync_writes {
            self.device.sync()?;
        }
        Ok(())
    }

    /// Replay the log from the beginning, yielding each logged operation.
    pub fn replay(&self) -> StorageResult<Vec<(u64, Entry)>> {
        let len = self.device.len();
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut data = vec![0u8; len as usize];
        self.device.read_at(0, &mut data)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 13 <= data.len() {
            let op = data[pos];
            let key = u64::from_le_bytes(data[pos + 1..pos + 9].try_into().unwrap());
            let vlen = u32::from_le_bytes(data[pos + 9..pos + 13].try_into().unwrap()) as usize;
            pos += 13;
            match op {
                OP_PUT if pos + vlen <= data.len() => {
                    out.push((key, Some(data[pos..pos + vlen].to_vec())));
                    pos += vlen;
                }
                OP_DELETE => out.push((key, None)),
                // Torn tail write: stop replaying.
                _ => break,
            }
        }
        Ok(out)
    }

    /// Number of bytes currently in the log.
    pub fn len(&self) -> u64 {
        self.device.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::MemDevice;

    #[test]
    fn log_and_replay_roundtrip() {
        let wal = WriteAheadLog::new(Arc::new(MemDevice::new()), false);
        let metrics = StorageMetrics::new();
        wal.log_put(1, b"one", &metrics).unwrap();
        wal.log_delete(2, &metrics).unwrap();
        wal.log_put(3, b"", &metrics).unwrap();
        let ops = wal.replay().unwrap();
        assert_eq!(
            ops,
            vec![(1, Some(b"one".to_vec())), (2, None), (3, Some(Vec::new()))]
        );
        assert!(!wal.is_empty());
    }

    #[test]
    fn empty_wal_replays_nothing() {
        let wal = WriteAheadLog::new(Arc::new(MemDevice::new()), false);
        assert!(wal.replay().unwrap().is_empty());
        assert!(wal.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let device = Arc::new(MemDevice::new());
        let wal = WriteAheadLog::new(Arc::clone(&device) as Arc<dyn Device>, false);
        let metrics = StorageMetrics::new();
        wal.log_put(1, b"ok", &metrics).unwrap();
        // Simulate a torn write: an incomplete header at the tail.
        device.append(&[OP_PUT, 1, 2, 3]).unwrap();
        let ops = wal.replay().unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, 1);
    }

    #[test]
    fn metrics_account_wal_writes() {
        let wal = WriteAheadLog::new(Arc::new(MemDevice::new()), false);
        let metrics = StorageMetrics::new();
        wal.log_put(1, b"abcd", &metrics).unwrap();
        assert_eq!(metrics.snapshot().disk_write_bytes, 17);
    }
}
