//! Write-ahead log for the LSM engine, on the shared group-commit framing
//! ([`mlkv_storage::wal`]).
//!
//! Every mutation is appended to the WAL *before* it is applied to the
//! memtable — a whole `write_batch` as one grouped append — so the memtable's
//! contents can be recovered after a crash, and nothing acknowledged was ever
//! applied without first being logged. The store calls [`WriteAheadLog::commit`]
//! at each operation's acknowledgement point (one sync per batch under
//! [`DurabilityMode::GroupCommit`]) and rotates the log whenever the memtable
//! is flushed into an SSTable.

use std::sync::Arc;

use mlkv_storage::kv::WriteBatch;
use mlkv_storage::wal::{WalOp, WalReader, WalWriter};
use mlkv_storage::{Device, DurabilityMode, StorageMetrics, StorageResult};

use crate::memtable::Entry;

/// Append-only write-ahead log over the shared checksummed framing.
pub struct WriteAheadLog {
    writer: WalWriter,
}

impl WriteAheadLog {
    /// Wrap a device as a WAL syncing under `durability`.
    pub fn new(
        device: Arc<dyn Device>,
        durability: DurabilityMode,
        metrics: Arc<StorageMetrics>,
    ) -> Self {
        Self {
            writer: WalWriter::new(device, durability, metrics),
        }
    }

    /// Publish acknowledged groups into `tap` for replication (see
    /// [`mlkv_storage::wal::WalTap`]).
    pub fn with_tap(mut self, tap: Option<Arc<mlkv_storage::wal::WalTap>>) -> Self {
        self.writer = self.writer.with_tap(tap);
        self
    }

    /// Append a put record (not yet committed).
    pub fn log_put(&self, key: u64, value: &[u8]) -> StorageResult<()> {
        self.writer.append(&WalOp::encode_put(key, value))
    }

    /// Append a delete record (not yet committed).
    pub fn log_delete(&self, key: u64) -> StorageResult<()> {
        self.writer.append(&WalOp::encode_delete(key))
    }

    /// Append a whole batch of puts as **one** device append, so the batch is
    /// recovered all-or-nothing up to the torn tail and pays one write + (at
    /// commit) one sync regardless of its size.
    pub fn log_batch(&self, batch: &WriteBatch) -> StorageResult<()> {
        let payloads: Vec<Vec<u8>> = batch
            .iter()
            .map(|(k, v)| WalOp::encode_put(*k, v))
            .collect();
        self.writer
            .append_group(payloads.iter().map(|p| p.as_slice()))
    }

    /// Append a batch of already-resolved `(key, value)` puts as **one**
    /// device append — the `multi_rmw` analogue of
    /// [`WriteAheadLog::log_batch`], with the same all-or-nothing recovery.
    pub fn log_puts<'a, I>(&self, pairs: I) -> StorageResult<()>
    where
        I: Iterator<Item = (u64, &'a [u8])>,
    {
        let payloads: Vec<Vec<u8>> = pairs.map(|(k, v)| WalOp::encode_put(k, v)).collect();
        self.writer
            .append_group(payloads.iter().map(|p| p.as_slice()))
    }

    /// Append a mixed batch of puts (`Some`) and deletes (`None`) as **one**
    /// device append — the general entry the batch-first mutation path uses;
    /// same all-or-nothing recovery as [`WriteAheadLog::log_batch`].
    pub fn log_entries<'a, I>(&self, entries: I) -> StorageResult<()>
    where
        I: Iterator<Item = (u64, Option<&'a [u8]>)>,
    {
        let payloads: Vec<Vec<u8>> = entries
            .map(|(k, e)| match e {
                Some(v) => WalOp::encode_put(k, v),
                None => WalOp::encode_delete(k),
            })
            .collect();
        self.writer
            .append_group(payloads.iter().map(|p| p.as_slice()))
    }

    /// Acknowledgement point: make everything logged so far durable under the
    /// configured mode (one sync per group under `GroupCommit`).
    pub fn commit(&self) -> StorageResult<()> {
        self.writer.commit()
    }

    /// Replay the log from the beginning, yielding each intact logged
    /// operation (stops at the first torn or corrupt frame).
    pub fn replay(&self) -> StorageResult<Vec<(u64, Entry)>> {
        let mut out = Vec::new();
        for payload in WalReader::replay(self.writer.device().as_ref())? {
            match WalOp::decode(&payload)? {
                WalOp::Put { key, value } => out.push((key, Some(value))),
                WalOp::Delete { key } => out.push((key, None)),
            }
        }
        Ok(out)
    }

    /// Number of bytes currently in the log.
    pub fn len(&self) -> u64 {
        self.writer.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.writer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::MemDevice;

    fn wal(device: Arc<dyn Device>, durability: DurabilityMode) -> WriteAheadLog {
        WriteAheadLog::new(device, durability, Arc::new(StorageMetrics::new()))
    }

    #[test]
    fn log_and_replay_roundtrip() {
        let w = wal(Arc::new(MemDevice::new()), DurabilityMode::None);
        w.log_put(1, b"one").unwrap();
        w.log_delete(2).unwrap();
        w.log_put(3, b"").unwrap();
        w.commit().unwrap();
        let ops = w.replay().unwrap();
        assert_eq!(
            ops,
            vec![(1, Some(b"one".to_vec())), (2, None), (3, Some(Vec::new()))]
        );
        assert!(!w.is_empty());
    }

    #[test]
    fn empty_wal_replays_nothing() {
        let w = wal(Arc::new(MemDevice::new()), DurabilityMode::None);
        assert!(w.replay().unwrap().is_empty());
        assert!(w.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let device = Arc::new(MemDevice::new());
        let w = wal(Arc::clone(&device) as Arc<dyn Device>, DurabilityMode::None);
        w.log_put(1, b"ok").unwrap();
        // Simulate a torn write: an incomplete frame at the tail.
        device.append(&[42, 0, 0, 0, 7, 7]).unwrap();
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, 1);
    }

    #[test]
    fn batch_is_one_append() {
        let device = Arc::new(MemDevice::new());
        let metrics = Arc::new(StorageMetrics::new());
        let w = WriteAheadLog::new(
            Arc::clone(&device) as Arc<dyn Device>,
            DurabilityMode::GroupCommit { window: 1024 },
            Arc::clone(&metrics),
        );
        let mut batch = WriteBatch::new();
        for k in 0..50u64 {
            batch.put(k, vec![k as u8; 8]);
        }
        w.log_batch(&batch).unwrap();
        w.commit().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 1, "whole batch in one device append");
        assert_eq!(snap.wal_syncs, 1, "one sync per committed group");
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 50);
        assert_eq!(ops[49], (49, Some(vec![49u8; 8])));
    }

    #[test]
    fn metrics_account_wal_writes() {
        let metrics = Arc::new(StorageMetrics::new());
        let w = WriteAheadLog::new(
            Arc::new(MemDevice::new()),
            DurabilityMode::None,
            Arc::clone(&metrics),
        );
        w.log_put(1, b"abcd").unwrap();
        // 8-byte frame header + 1-byte op tag + 8-byte key + 4-byte value.
        assert_eq!(metrics.snapshot().disk_write_bytes, 21);
        assert_eq!(metrics.snapshot().wal_appends, 1);
    }
}
