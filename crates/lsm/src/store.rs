//! The LSM store tying memtable, WAL, SSTables, block cache and compaction
//! together behind the [`KvStore`] interface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use mlkv_storage::device::device_from_config;
use mlkv_storage::exec::{available_parallelism, split_sorted, BatchExecutor};
use mlkv_storage::kv::{BatchRmwFn, Key, KvStore, ReadResult, ReadSource, RmwFn, WriteBatch};
use mlkv_storage::{
    DurabilityMode, IoPlanner, ShardedLruCache, StorageError, StorageMetrics, StorageResult,
    StoreConfig,
};

use crate::memtable::{Entry, MemTable, ShardedMemTable};
use crate::sstable::SsTable;
use crate::wal::WriteAheadLog;

/// Number of SSTables tolerated before a full compaction is triggered.
const COMPACTION_THRESHOLD: usize = 6;

struct Inner {
    memtable: ShardedMemTable,
    /// All SSTables, oldest first.
    tables: Vec<SsTable>,
    wal: WriteAheadLog,
    wal_gen: u64,
}

/// LSM-tree key-value store (RocksDB stand-in).
///
/// Write concurrency: mutating batches hold the structural lock ([`Inner`])
/// *shared* and serialise on the hash-sharded memtable's per-shard locks, so
/// batches touching disjoint shards commit concurrently. Each batch stages its
/// values under its shard locks, then one grouped WAL append + one
/// group-commit ack cover the whole batch (shard workers stage, the calling
/// thread is the single committer). Flushes take the structural lock
/// exclusively, draining every shard into one SSTable pass, so SST/WAL
/// rotation ordering is identical to the single-shard engine.
pub struct LsmStore {
    config: StoreConfig,
    metrics: Arc<StorageMetrics>,
    inner: RwLock<Inner>,
    block_cache: ShardedLruCache,
    memtable_budget: usize,
    next_seq: AtomicU64,
    executor: BatchExecutor,
    write_executor: BatchExecutor,
}

impl LsmStore {
    /// Open (or create) a store described by `config`. Half the memory budget
    /// goes to the memtable, half to the block cache (RocksDB's usual split).
    pub fn open(config: StoreConfig) -> StorageResult<Self> {
        let metrics = Arc::new(StorageMetrics::new());
        let memtable_budget = (config.memory_budget / 2).max(4 << 10);
        let block_cache = ShardedLruCache::new((config.memory_budget / 2).max(4 << 10), 8);

        let mut tables = Vec::new();
        let mut max_seq = 0u64;
        let mut wal_gen = 0u64;
        if let Some(dir) = &config.dir {
            std::fs::create_dir_all(dir)?;
            let mut table_seqs = Vec::new();
            for entry in std::fs::read_dir(dir)? {
                let name = entry?.file_name().to_string_lossy().into_owned();
                if let Some(seq) = name
                    .strip_prefix("sst_")
                    .and_then(|s| s.strip_suffix(".dat"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    table_seqs.push(seq);
                } else if let Some(gen) = name
                    .strip_prefix("wal_")
                    .and_then(|s| s.strip_suffix(".dat"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    wal_gen = wal_gen.max(gen);
                }
            }
            table_seqs.sort_unstable();
            for seq in table_seqs {
                let device = device_from_config(&config, &format!("sst_{seq}.dat"))?;
                let planner = IoPlanner::from_config(&config).with_metrics(Arc::clone(&metrics));
                match SsTable::open(device, planner, seq) {
                    Ok(table) => tables.push(table),
                    // An SST whose hardening sync never completed (crash
                    // mid-flush) is empty or torn. Its entries are still in
                    // the WAL — rotation only removes a WAL *after* the SST
                    // covering it synced — so dropping the carcass is safe.
                    Err(_) => {
                        let _ = std::fs::remove_file(dir.join(format!("sst_{seq}.dat")));
                    }
                }
                max_seq = max_seq.max(seq);
            }
        }
        let wal_device = device_from_config(&config, &format!("wal_{wal_gen}.dat"))?;
        let wal = WriteAheadLog::new(
            wal_device,
            config.effective_durability(),
            Arc::clone(&metrics),
        )
        .with_tap(config.wal_tap.clone());
        let write_shards = match config.effective_write_shards() {
            0 => available_parallelism(),
            n => n,
        };
        let memtable = ShardedMemTable::new(write_shards);
        for (key, entry) in wal.replay()? {
            let mut shard = memtable.lock_shard(memtable.shard_of(key));
            match entry {
                Some(v) => shard.put(key, v),
                None => shard.delete(key),
            }
        }

        Ok(Self {
            executor: BatchExecutor::new(config.parallelism),
            write_executor: BatchExecutor::new(write_shards),
            config,
            metrics,
            inner: RwLock::new(Inner {
                memtable,
                tables,
                wal,
                wal_gen,
            }),
            block_cache,
            memtable_budget,
            next_seq: AtomicU64::new(max_seq + 1),
        })
    }

    /// Convenience constructor for tests: purely in-memory store.
    pub fn in_memory(memory_budget: usize) -> StorageResult<Self> {
        Self::open(StoreConfig::in_memory().with_memory_budget(memory_budget))
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of SSTables currently on disk (for tests and reporting).
    pub fn table_count(&self) -> usize {
        self.inner.read().tables.len()
    }

    fn next_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Flush the memtable into a new SSTable and rotate the WAL. Must be called
    /// with the structural write lock held (no concurrent writers or readers);
    /// `inner` is that guard. Drains *every* memtable shard into one sorted
    /// SSTable pass.
    fn flush_memtable(&self, inner: &mut Inner) -> StorageResult<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let entries = inner.memtable.drain_sorted();
        let seq = self.next_seq();
        let built = (|| {
            let device = device_from_config(&self.config, &format!("sst_{seq}.dat"))?;
            let table = SsTable::build(
                device,
                IoPlanner::from_config(&self.config).with_metrics(Arc::clone(&self.metrics)),
                &entries,
                seq,
                &self.metrics,
            )?;
            // Harden the SSTable *before* the WAL covering its entries is
            // removed, so a crash can never leave the entries in neither place.
            // Under `DurabilityMode::None` nothing promises to survive a crash,
            // so the sync is skipped (preserving the non-durable fast path).
            if self.config.effective_durability() != DurabilityMode::None {
                table.sync()?;
            }
            Ok(table)
        })();
        let table = match built {
            Ok(table) => table,
            Err(e) => {
                // The SSTable never made it: put the drained entries back so
                // acknowledged live state stays readable while the device is
                // faulty (the WAL still covers it, so durability is
                // unaffected; a later flush retries with a fresh sequence).
                inner.memtable.restore(entries);
                return Err(e);
            }
        };
        inner.tables.push(table);
        // Rotate the WAL: recovered state now lives in the SSTable.
        inner.wal_gen += 1;
        if let Some(dir) = &self.config.dir {
            let _ = std::fs::remove_file(dir.join(format!("wal_{}.dat", inner.wal_gen - 1)));
        }
        let wal_device = device_from_config(&self.config, &format!("wal_{}.dat", inner.wal_gen))?;
        inner.wal = WriteAheadLog::new(
            wal_device,
            self.config.effective_durability(),
            Arc::clone(&self.metrics),
        )
        .with_tap(self.config.wal_tap.clone());

        if inner.tables.len() > COMPACTION_THRESHOLD {
            self.compact(inner)?;
        }
        Ok(())
    }

    /// Full compaction: merge every SSTable (newest wins) into a single run and
    /// drop tombstones.
    fn compact(&self, inner: &mut Inner) -> StorageResult<()> {
        let mut merged: std::collections::BTreeMap<u64, Entry> = std::collections::BTreeMap::new();
        for table in &inner.tables {
            // Oldest first: later (newer) tables overwrite earlier entries.
            for (key, entry) in table.scan_all(&self.metrics)? {
                merged.insert(key, entry);
            }
        }
        // A full compaction covers the whole key space, so tombstones can be dropped.
        let entries: Vec<(u64, Entry)> = merged.into_iter().filter(|(_, e)| e.is_some()).collect();
        let seq = self.next_seq();
        let device = device_from_config(&self.config, &format!("sst_{seq}.dat"))?;
        let table = SsTable::build(
            device,
            IoPlanner::from_config(&self.config).with_metrics(Arc::clone(&self.metrics)),
            &entries,
            seq,
            &self.metrics,
        )?;
        // Harden the merged run before its inputs are removed (same crash
        // rule as `flush_memtable`).
        if self.config.effective_durability() != DurabilityMode::None {
            table.sync()?;
        }
        // Remove the old table files.
        if let Some(dir) = &self.config.dir {
            for old in &inner.tables {
                let _ = std::fs::remove_file(dir.join(format!("sst_{}.dat", old.seq)));
            }
        }
        inner.tables = vec![table];
        Ok(())
    }

    /// Search the SSTables (newest first) for `key`.
    fn search_tables(&self, inner: &Inner, key: Key) -> StorageResult<Option<Entry>> {
        for table in inner.tables.iter().rev() {
            if let Some(entry) = table.get(key, &self.metrics)? {
                return Ok(Some(entry));
            }
        }
        Ok(None)
    }

    /// Resolve a set of batch positions against the SSTables: one pass per
    /// table (newest first), each table's bloom filter rejecting absent keys
    /// before any device read and every admitted key of the pass fetched with
    /// **one** coalesced scatter ([`SsTable::submit_get_many`]). Resolved
    /// values are copied into the block cache, exactly like the point-read
    /// path. The passes are pipelined: as soon as a pass's results are
    /// classified, the next table's scatter is submitted, and the resolved
    /// values' bookkeeping (cache inserts, metrics) runs while that scatter
    /// is in flight. Returns `(original position, result)` pairs; positions
    /// that no table holds come back as misses.
    fn probe_tables(
        &self,
        tables: &[SsTable],
        keys: &[Key],
        mut unresolved: Vec<usize>,
    ) -> Vec<(usize, StorageResult<Vec<u8>>)> {
        fn submit<'t>(
            table: &'t SsTable,
            keys: &[Key],
            slots: Vec<usize>,
        ) -> (Vec<usize>, crate::sstable::PendingTableGets<'t>) {
            let probe_keys: Vec<Key> = slots.iter().map(|&i| keys[i]).collect();
            let pending = table.submit_get_many(probe_keys);
            (slots, pending)
        }

        let mut out = Vec::with_capacity(unresolved.len());
        let mut rev_tables = tables.iter().rev();
        let mut inflight = match rev_tables.next() {
            Some(table) if !unresolved.is_empty() => {
                Some(submit(table, keys, std::mem::take(&mut unresolved)))
            }
            _ => None,
        };
        while let Some((slots, pending)) = inflight.take() {
            let results = pending.wait(&self.metrics);
            // Cheap classification first, so the next pass's scatter gets
            // submitted before any per-value work.
            let mut hits: Vec<(usize, Vec<u8>)> = Vec::new();
            let mut still: Vec<usize> = Vec::new();
            for (i, result) in slots.into_iter().zip(results) {
                match result {
                    Ok(Some(Some(v))) => hits.push((i, v)),
                    Ok(Some(None)) => {
                        self.metrics.record_miss();
                        out.push((i, Err(StorageError::KeyNotFound)));
                    }
                    Ok(None) => still.push(i),
                    Err(e) => out.push((i, Err(e))),
                }
            }
            inflight = if still.is_empty() {
                None
            } else if let Some(table) = rev_tables.next() {
                Some(submit(table, keys, still))
            } else {
                unresolved = still;
                None
            };
            // This pass's bookkeeping overlaps the next pass's scatter.
            for (i, v) in hits {
                self.metrics.record_disk_read(v.len() as u64);
                self.block_cache.insert(keys[i], v.clone());
                out.push((i, Ok(v)));
            }
        }
        for i in unresolved {
            self.metrics.record_miss();
            out.push((i, Err(StorageError::KeyNotFound)));
        }
        out
    }

    /// Flush if the shared memtable budget is exceeded. Called after a batch
    /// released its shard locks and the structural read lock: the flush takes
    /// the structural lock exclusively and re-checks the budget under it (a
    /// concurrent batch may have flushed first — then this is a no-op).
    fn maybe_flush(&self) -> StorageResult<()> {
        if self.inner.read().memtable.bytes() < self.memtable_budget {
            return Ok(());
        }
        let mut inner = self.inner.write();
        if inner.memtable.bytes() >= self.memtable_budget {
            self.flush_memtable(&mut inner)?;
        }
        Ok(())
    }

    /// The single mutation tail every write path funnels through: a batch of
    /// already-resolved entries (`Some` = put, `None` = tombstone) in batch
    /// order. Locks the touched memtable shards in ascending index order
    /// (deadlock-free against concurrent batches), appends the whole batch as
    /// **one** grouped WAL record set, applies it to the shards (fanning out
    /// over the write executor when the batch is large enough), then pays one
    /// group-commit sync at the acknowledgement point. The append precedes
    /// every memtable mutation, so a failed append leaves the store untouched
    /// and recovery replays the batch all-or-nothing up to the torn tail.
    fn commit_entries(&self, keys: &[Key], entries: &[Entry]) -> StorageResult<()> {
        debug_assert_eq!(keys.len(), entries.len());
        if keys.is_empty() {
            return Ok(());
        }
        {
            let inner = self.inner.read();
            let groups: Vec<(usize, Vec<usize>)> = inner
                .memtable
                .positions_by_shard(keys)
                .into_iter()
                .enumerate()
                .filter(|(_, positions)| !positions.is_empty())
                .collect();
            let shard_ids: Vec<usize> = groups.iter().map(|(s, _)| *s).collect();
            let mut guards = inner.memtable.lock_shards(&shard_ids);
            inner.wal.log_entries(
                keys.iter()
                    .copied()
                    .zip(entries.iter().map(|e| e.as_deref())),
            )?;
            let apply = |shard: &mut MemTable, positions: &[usize]| {
                for &i in positions {
                    match &entries[i] {
                        Some(v) => {
                            self.metrics.record_upsert();
                            shard.put(keys[i], v.clone());
                        }
                        None => shard.delete(keys[i]),
                    }
                    self.block_cache.invalidate(keys[i]);
                }
            };
            if self.write_executor.workers_for(groups.len(), keys.len()) <= 1 {
                for (guard, (_, positions)) in guards.iter_mut().zip(&groups) {
                    apply(guard, positions);
                }
            } else {
                let jobs: Vec<_> = guards
                    .iter_mut()
                    .zip(&groups)
                    .map(|(guard, (_, positions))| {
                        let apply = &apply;
                        let shard: &mut MemTable = guard;
                        move || apply(shard, positions)
                    })
                    .collect();
                self.write_executor.execute(jobs, keys.len());
            }
            // One group-commit sync acknowledges the whole batch, while the
            // shard locks are still held so WAL order matches apply order on
            // every shard two batches share.
            inner.wal.commit()?;
        }
        // The budget check runs only after the acknowledgement (a mid-batch
        // flush would rotate away the WAL covering the batch's entries) and
        // outside the shard locks. The memtable may overshoot by one batch.
        self.maybe_flush()
    }
}

impl KvStore for LsmStore {
    fn name(&self) -> &'static str {
        // Matches `BackendKind::RocksDbLike.name()` and the paper's figure labels.
        "RocksDB"
    }

    fn get_traced(&self, key: Key) -> StorageResult<ReadResult> {
        let inner = self.inner.read();
        // 1. Memtable (hot memory).
        if let Some(entry) = inner.memtable.get(key) {
            return match entry {
                Some(v) => {
                    self.metrics.record_mem_hit();
                    Ok(ReadResult {
                        value: v,
                        source: ReadSource::HotMemory,
                    })
                }
                None => {
                    self.metrics.record_miss();
                    Err(StorageError::KeyNotFound)
                }
            };
        }
        // 2. Block cache (cold memory).
        if let Some(v) = self.block_cache.get(key) {
            self.metrics.record_mem_hit();
            return Ok(ReadResult {
                value: v,
                source: ReadSource::ColdMemory,
            });
        }
        // 3. SSTables (disk).
        match self.search_tables(&inner, key)? {
            Some(Some(v)) => {
                self.metrics.record_disk_read(v.len() as u64);
                self.block_cache.insert(key, v.clone());
                Ok(ReadResult {
                    value: v,
                    source: ReadSource::Disk,
                })
            }
            _ => {
                self.metrics.record_miss();
                Err(StorageError::KeyNotFound)
            }
        }
    }

    fn multi_get(&self, keys: &[Key]) -> Vec<StorageResult<Vec<u8>>> {
        // One memtable/SSTable-list lock acquisition covers the whole batch.
        let inner = self.inner.read();
        let mut out: Vec<Option<StorageResult<Vec<u8>>>> = keys.iter().map(|_| None).collect();
        let mut unresolved: Vec<usize> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            if let Some(entry) = inner.memtable.get(key) {
                out[i] = Some(match entry {
                    Some(v) => {
                        self.metrics.record_mem_hit();
                        Ok(v)
                    }
                    None => {
                        self.metrics.record_miss();
                        Err(StorageError::KeyNotFound)
                    }
                });
            } else if let Some(v) = self.block_cache.get(key) {
                self.metrics.record_mem_hit();
                out[i] = Some(Ok(v));
            } else {
                unresolved.push(i);
            }
        }
        // Grouped SSTable probes: one pass per table (newest first) over the
        // remaining keys in sorted order, with each table's bloom filter
        // rejecting absent keys before any device read. The memtable/cache
        // pass above stays a single serial sweep under the read lock; only
        // this probe phase — where the device reads happen — fans out, each
        // worker sweeping its own contiguous key range through the tables.
        unresolved.sort_unstable_by_key(|&i| keys[i]);
        let workers = self.executor.planned_workers(unresolved.len());
        if workers <= 1 {
            for (i, result) in self.probe_tables(&inner.tables, keys, unresolved) {
                out[i] = Some(result);
            }
        } else {
            let tables = &inner.tables;
            let jobs: Vec<_> = split_sorted(&unresolved, keys, workers)
                .into_iter()
                .map(|range| move || self.probe_tables(tables, keys, range.to_vec()))
                .collect();
            for pairs in self.executor.execute(jobs, unresolved.len()) {
                for (i, result) in pairs {
                    out[i] = Some(result);
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        // Thin wrapper over the batch path: one mutation entry point.
        self.commit_entries(&[key], &[Some(value.to_vec())])
    }

    fn rmw(&self, key: Key, f: &RmwFn) -> StorageResult<Vec<u8>> {
        // Thin wrapper over the batch path: one mutation entry point.
        let mut out = self.multi_rmw(&[key], &|_, current| f(current))?;
        Ok(out.pop().expect("single-key batch yields one value"))
    }

    fn multi_rmw(&self, keys: &[Key], f: &BatchRmwFn) -> StorageResult<Vec<Vec<u8>>> {
        // One *grouped* WAL append and one group-commit sync for the whole
        // batch. The structural lock is held shared; the batch's memtable
        // shards are locked in ascending order and held across resolve,
        // append, apply and ack, so concurrent batches serialise only where
        // they overlap. Values are resolved against shard-local overlays
        // (duplicate keys hash to one shard, so each overlay observes every
        // earlier occurrence of its keys) and neither the log nor the
        // memtable is touched until every value is computed: a failed append
        // leaves the store exactly as it was, and a crash recovers the batch
        // all-or-nothing. The serving layer's idempotency markers ride in the
        // same batch as the gradients they cover, so this atomicity is what
        // makes a marker durable if and only if its batch is.
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = vec![Vec::new(); keys.len()];
        {
            let inner = self.inner.read();
            let groups: Vec<(usize, Vec<usize>)> = inner
                .memtable
                .positions_by_shard(keys)
                .into_iter()
                .enumerate()
                .filter(|(_, positions)| !positions.is_empty())
                .collect();
            let shard_ids: Vec<usize> = groups.iter().map(|(s, _)| *s).collect();
            let mut guards = inner.memtable.lock_shards(&shard_ids);
            // Phase 1 (shard workers stage): resolve every value, reading
            // through overlay → shard memtable → SSTables. No mutation yet.
            let inner_ref = &*inner;
            let resolve =
                |shard: &MemTable, positions: &[usize]| -> StorageResult<Vec<(usize, Vec<u8>)>> {
                    let mut overlay: std::collections::HashMap<Key, Vec<u8>> =
                        std::collections::HashMap::new();
                    let mut staged = Vec::with_capacity(positions.len());
                    for &i in positions {
                        let key = keys[i];
                        self.metrics.record_rmw();
                        let current: Option<Vec<u8>> = match overlay.get(&key) {
                            Some(v) => Some(v.clone()),
                            None => match shard.get(key) {
                                Some(Some(v)) => Some(v.clone()),
                                Some(None) => None,
                                None => match self.search_tables(inner_ref, key)? {
                                    Some(Some(v)) => Some(v),
                                    _ => None,
                                },
                            },
                        };
                        let new_value = f(i, current.as_deref());
                        overlay.insert(key, new_value.clone());
                        staged.push((i, new_value));
                    }
                    Ok(staged)
                };
            if self.write_executor.workers_for(groups.len(), keys.len()) <= 1 {
                for (guard, (_, positions)) in guards.iter().zip(&groups) {
                    for (i, value) in resolve(guard, positions)? {
                        out[i] = value;
                    }
                }
            } else {
                let jobs: Vec<_> = guards
                    .iter()
                    .zip(&groups)
                    .map(|(guard, (_, positions))| {
                        let resolve = &resolve;
                        let shard: &MemTable = guard;
                        move || resolve(shard, positions)
                    })
                    .collect();
                for staged in self.write_executor.execute(jobs, keys.len()) {
                    for (i, value) in staged? {
                        out[i] = value;
                    }
                }
            }
            // Phase 2 (single committer): one grouped append, apply to the
            // shards, one group-commit ack — all while the shard locks are
            // still held, so WAL order matches apply order on shared shards.
            inner
                .wal
                .log_puts(keys.iter().copied().zip(out.iter().map(|v| v.as_slice())))?;
            let apply = |shard: &mut MemTable, positions: &[usize]| {
                for &i in positions {
                    shard.put(keys[i], out[i].clone());
                    self.block_cache.invalidate(keys[i]);
                }
            };
            if self.write_executor.workers_for(groups.len(), keys.len()) <= 1 {
                for (guard, (_, positions)) in guards.iter_mut().zip(&groups) {
                    apply(guard, positions);
                }
            } else {
                let jobs: Vec<_> = guards
                    .iter_mut()
                    .zip(&groups)
                    .map(|(guard, (_, positions))| {
                        let apply = &apply;
                        let shard: &mut MemTable = guard;
                        move || apply(shard, positions)
                    })
                    .collect();
                self.write_executor.execute(jobs, keys.len());
            }
            inner.wal.commit()?;
        }
        // Budget check after the ack (a mid-batch flush would rotate away the
        // WAL covering the batch) and outside the shard locks.
        self.maybe_flush()?;
        Ok(out)
    }

    fn delete(&self, key: Key) -> StorageResult<()> {
        // Thin wrapper over the batch path: one mutation entry point.
        self.commit_entries(&[key], &[None])
    }

    fn exists(&self, key: Key) -> StorageResult<bool> {
        let inner = self.inner.read();
        if let Some(entry) = inner.memtable.get(key) {
            return Ok(entry.is_some());
        }
        if self.block_cache.contains(key) {
            return Ok(true);
        }
        // Bloom-filter fast path: tables whose filter rejects the key are
        // skipped without any device read; an admitted key costs one 13-byte
        // header read in the newest table that holds it.
        for table in inner.tables.iter().rev() {
            if let Some(live) = table.contains(key, &self.metrics)? {
                return Ok(live);
            }
        }
        Ok(false)
    }

    fn write_batch(&self, batch: &WriteBatch) -> StorageResult<()> {
        // Thin wrapper over the batch path: one grouped WAL append, sharded
        // apply, one group-commit sync (see `commit_entries`).
        let keys: Vec<Key> = batch.iter().map(|(k, _)| *k).collect();
        let entries: Vec<Entry> = batch.iter().map(|(_, v)| Some(v.clone())).collect();
        self.commit_entries(&keys, &entries)
    }

    fn approximate_len(&self) -> usize {
        let inner = self.inner.read();
        // Approximate: overcounts keys that exist in several runs.
        inner.memtable.len() + inner.tables.iter().map(|t| t.len()).sum::<usize>()
    }

    fn metrics(&self) -> Arc<StorageMetrics> {
        Arc::clone(&self.metrics)
    }

    fn flush(&self) -> StorageResult<()> {
        let mut inner = self.inner.write();
        self.flush_memtable(&mut inner)
    }

    fn replication_tap(&self) -> Option<Arc<mlkv_storage::wal::WalTap>> {
        self.config.wal_tap.clone()
    }

    fn replication_snapshot(&self) -> StorageResult<Vec<(Key, Vec<u8>)>> {
        // Merge every SSTable oldest→newest, then overlay the memtable — the
        // same newest-wins resolution reads use — and drop tombstones: the
        // result is the full live state a catching-up replica should install.
        let inner = self.inner.read();
        let mut merged: std::collections::BTreeMap<u64, Entry> = std::collections::BTreeMap::new();
        for table in &inner.tables {
            for (key, entry) in table.scan_all(&self.metrics)? {
                merged.insert(key, entry);
            }
        }
        for (key, entry) in inner.memtable.snapshot_sorted() {
            merged.insert(key, entry);
        }
        self.metrics.record_repl_snapshot();
        Ok(merged
            .into_iter()
            .filter_map(|(k, e)| e.map(|v| (k, v)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = LsmStore::in_memory(1 << 20).unwrap();
        store.put(1, b"one").unwrap();
        assert_eq!(store.get(1).unwrap(), b"one");
        assert!(store.get(2).unwrap_err().is_not_found());
        assert_eq!(store.name(), "RocksDB");
    }

    #[test]
    fn multi_get_reads_through_all_levels() {
        let store = LsmStore::in_memory(32 << 10).unwrap();
        for k in 0..500u64 {
            store.put(k, &[k as u8; 32]).unwrap();
        }
        store.flush().unwrap(); // everything now lives in SSTables
        store.put(3, b"fresh").unwrap(); // memtable entry
        store.delete(4).unwrap(); // memtable tombstone
        let _ = store.get(10); // block-cache entry
        let keys = vec![3, 4, 10, 100, 9_999, 10];
        let batch = store.multi_get(&keys);
        assert_eq!(batch[0].as_deref().unwrap(), b"fresh");
        assert!(batch[1].as_ref().unwrap_err().is_not_found());
        assert_eq!(batch[2].as_deref().unwrap(), &[10u8; 32]);
        assert_eq!(batch[3].as_deref().unwrap(), &[100u8; 32]);
        assert!(batch[4].as_ref().unwrap_err().is_not_found());
        assert_eq!(batch[5].as_deref().unwrap(), &[10u8; 32]);
    }

    #[test]
    fn multi_rmw_sees_duplicate_writes_and_flushes_under_pressure() {
        let store = LsmStore::in_memory(16 << 10).unwrap();
        // 3000 ops over 1000 keys: the 8 KiB memtable budget forces flushes
        // mid-batch, so later occurrences read back through the SSTables.
        let keys: Vec<u64> = (0..3000).map(|i| i % 1000).collect();
        store
            .multi_rmw(&keys, &|_, cur| {
                let n = cur
                    .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
                    .unwrap_or(0);
                let mut v = vec![0u8; 32];
                v[..8].copy_from_slice(&(n + 1).to_le_bytes());
                v
            })
            .unwrap();
        assert!(store.table_count() > 0, "memtable should have flushed");
        // Every key appears 3 times in the batch; each occurrence must have
        // seen the previous one even across mid-batch memtable flushes.
        for k in 0..1000u64 {
            let v = store.get(k).unwrap();
            assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 3, "key {k}");
        }
    }

    #[test]
    fn parallel_sstable_probes_match_serial_results() {
        let open = |parallelism| {
            LsmStore::open(
                StoreConfig::in_memory()
                    .with_memory_budget(32 << 10)
                    .with_parallelism(parallelism),
            )
            .unwrap()
        };
        let serial = open(1);
        let parallel = open(8);
        for store in [&serial, &parallel] {
            for k in 0..2000u64 {
                store.put(k, &[(k % 251) as u8; 32]).unwrap();
            }
            store.flush().unwrap(); // everything lives in SSTables
        }
        // Above the executor cutoff, with duplicates and misses mixed in.
        let keys: Vec<u64> = (0..4096u64).map(|i| (i * 3) % 2100).collect();
        let a = serial.multi_get(&keys);
        let b = parallel.multi_get(&keys);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.as_ref().ok(),
                y.as_ref().ok(),
                "key {} (pos {i})",
                keys[i]
            );
        }
    }

    #[test]
    fn exists_uses_bloom_filters_without_reading_values() {
        let store = LsmStore::in_memory(32 << 10).unwrap();
        for k in 0..200u64 {
            store.put(k, &[7u8; 64]).unwrap();
        }
        store.flush().unwrap();
        store.delete(5).unwrap();
        assert!(store.exists(100).unwrap());
        assert!(!store.exists(5).unwrap(), "memtable tombstone");
        assert!(!store.exists(1 << 40).unwrap());
        // Foreground read metrics are untouched by exists.
        let snap = store.metrics().snapshot();
        let (hits, misses) = (snap.mem_hits, snap.misses);
        store.exists(100).unwrap();
        store.exists(1 << 40).unwrap();
        let snap = store.metrics().snapshot();
        assert_eq!((snap.mem_hits, snap.misses), (hits, misses));
    }

    #[test]
    fn write_batch_groups_wal_appends() {
        let store = LsmStore::in_memory(64 << 10).unwrap();
        let mut batch = WriteBatch::new();
        for k in 0..100u64 {
            batch.put(k, vec![k as u8; 16]);
        }
        store.write_batch(&batch).unwrap();
        for k in 0..100u64 {
            assert_eq!(store.get(k).unwrap(), vec![k as u8; 16]);
        }
    }

    #[test]
    fn overwrites_and_deletes_across_flushes() {
        let store = LsmStore::in_memory(64 << 10).unwrap();
        for k in 0..2000u64 {
            store.put(k, &[k as u8; 32]).unwrap();
        }
        assert!(store.table_count() > 0, "memtable should have flushed");
        store.put(7, b"new-seven").unwrap();
        store.delete(8).unwrap();
        store.flush().unwrap();
        assert_eq!(store.get(7).unwrap(), b"new-seven");
        assert!(store.get(8).unwrap_err().is_not_found());
        assert_eq!(store.get(1999).unwrap(), vec![1999u64 as u8; 32]);
    }

    #[test]
    fn reads_after_flush_come_from_disk_then_cache() {
        let store = LsmStore::in_memory(32 << 10).unwrap();
        for k in 0..500u64 {
            store.put(k, &[k as u8; 64]).unwrap();
        }
        store.flush().unwrap();
        let r1 = store.get_traced(3).unwrap();
        assert_eq!(r1.source, ReadSource::Disk);
        let r2 = store.get_traced(3).unwrap();
        assert_eq!(r2.source, ReadSource::ColdMemory);
        assert_eq!(r1.value, r2.value);
    }

    #[test]
    fn cache_is_invalidated_by_writes() {
        let store = LsmStore::in_memory(32 << 10).unwrap();
        store.put(1, b"a").unwrap();
        store.flush().unwrap();
        let _ = store.get(1).unwrap(); // populate cache
        store.put(1, b"b").unwrap();
        assert_eq!(store.get(1).unwrap(), b"b");
    }

    #[test]
    fn compaction_bounds_table_count() {
        let store = LsmStore::in_memory(16 << 10).unwrap();
        for k in 0..20_000u64 {
            store.put(k % 1000, &[(k % 251) as u8; 40]).unwrap();
        }
        assert!(
            store.table_count() <= COMPACTION_THRESHOLD + 1,
            "tables: {}",
            store.table_count()
        );
        // Data is still correct after compactions.
        for k in 0..1000u64 {
            assert!(store.get(k).is_ok(), "key {k} lost");
        }
    }

    #[test]
    fn rmw_reads_through_all_levels() {
        let store = LsmStore::in_memory(16 << 10).unwrap();
        store.put(42, &1u64.to_le_bytes()).unwrap();
        store.flush().unwrap();
        let out = store
            .rmw(42, &|old| {
                let cur = old
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                (cur + 5).to_le_bytes().to_vec()
            })
            .unwrap();
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 6);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "mlkv-lsm-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = StoreConfig::on_disk(&dir).with_memory_budget(32 << 10);
        {
            let store = LsmStore::open(cfg.clone()).unwrap();
            for k in 0..800u64 {
                store.put(k, &k.to_le_bytes()).unwrap();
            }
            store.delete(5).unwrap();
            // Note: no explicit flush — the WAL must cover the memtable tail.
        }
        let store = LsmStore::open(cfg).unwrap();
        assert_eq!(store.get(799).unwrap(), 799u64.to_le_bytes());
        assert_eq!(store.get(0).unwrap(), 0u64.to_le_bytes());
        assert!(store.get(5).unwrap_err().is_not_found());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replication_snapshot_merges_all_levels() {
        let tap = Arc::new(mlkv_storage::wal::WalTap::new(64));
        let store = LsmStore::open(
            StoreConfig::in_memory()
                .with_memory_budget(32 << 10)
                .with_wal_tap(Arc::clone(&tap)),
        )
        .unwrap();
        assert!(
            store
                .replication_tap()
                .is_some_and(|t| Arc::ptr_eq(&t, &tap)),
            "store exposes the configured tap"
        );
        store.put(1, b"sst-old").unwrap();
        store.put(2, b"sst").unwrap();
        store.put(3, b"doomed").unwrap();
        store.flush().unwrap(); // all three now live in an SSTable
        store.put(1, b"mem-new").unwrap(); // memtable overrides the SSTable
        store.delete(3).unwrap(); // memtable tombstone hides the SSTable
        store.put(4, b"mem").unwrap();
        let snap = store.replication_snapshot().unwrap();
        assert_eq!(
            snap,
            vec![
                (1, b"mem-new".to_vec()),
                (2, b"sst".to_vec()),
                (4, b"mem".to_vec()),
            ]
        );
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let store = Arc::new(LsmStore::in_memory(64 << 10).unwrap());
        for k in 0..100u64 {
            store.put(k, &k.to_le_bytes()).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    let key = 1000 + t * 1000 + i;
                    store.put(key, &key.to_le_bytes()).unwrap();
                    assert_eq!(store.get(key).unwrap(), key.to_le_bytes());
                    assert_eq!(store.get(i % 100).unwrap(), (i % 100).to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
