//! Backend selection: which key-value engine an embedding model is stored in.
//!
//! The paper's evaluation compares "X-MLKV" against "X-FASTER", "X-RocksDB" and
//! "X-WiredTiger" offloading variants plus the specialized frameworks'
//! proprietary in-memory storage. This module provides the corresponding engine
//! factory so the trainer and the benchmark harness can switch backends with a
//! single enum value.

use std::sync::Arc;

use mlkv_btree::BtreeStore;
use mlkv_faster::FasterKv;
use mlkv_lsm::LsmStore;
use mlkv_storage::{KvStore, MemStore, StorageResult, StoreConfig};

/// The key-value engine backing an embedding model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// MLKV: the FASTER-like hybrid log *plus* bounded staleness and look-ahead
    /// prefetching at the table layer.
    Mlkv,
    /// Plain FASTER-like hybrid log offloading (no staleness control, no
    /// look-ahead prefetching).
    Faster,
    /// LSM-tree offloading (RocksDB stand-in).
    RocksDbLike,
    /// B+tree offloading (WiredTiger stand-in).
    WiredTigerLike,
    /// Fully in-memory storage (stand-in for the specialized frameworks'
    /// proprietary in-memory embedding management).
    InMemory,
}

impl BackendKind {
    /// All backends, in the order the paper's figures list them.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Mlkv,
        BackendKind::Faster,
        BackendKind::RocksDbLike,
        BackendKind::WiredTigerLike,
        BackendKind::InMemory,
    ];

    /// Display name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Mlkv => "MLKV",
            BackendKind::Faster => "FASTER",
            BackendKind::RocksDbLike => "RocksDB",
            BackendKind::WiredTigerLike => "WiredTiger",
            BackendKind::InMemory => "InMemory",
        }
    }

    /// True when the MLKV table layer should enforce bounded staleness and
    /// enable look-ahead prefetching on top of this engine.
    pub fn is_mlkv(&self) -> bool {
        matches!(self, BackendKind::Mlkv)
    }
}

/// Open the key-value engine for `kind` with the given configuration.
pub fn open_store(kind: BackendKind, config: StoreConfig) -> StorageResult<Arc<dyn KvStore>> {
    Ok(match kind {
        // MLKV and FASTER share the same engine; the difference is the layer
        // above (staleness control + look-ahead prefetching).
        BackendKind::Mlkv | BackendKind::Faster => Arc::new(FasterKv::open(config)?),
        BackendKind::RocksDbLike => Arc::new(LsmStore::open(config)?),
        BackendKind::WiredTigerLike => Arc::new(BtreeStore::open(config)?),
        BackendKind::InMemory => Arc::new(MemStore::with_shards_and_parallelism(
            16,
            config.parallelism,
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backend_opens_and_serves_requests() {
        for kind in BackendKind::ALL {
            let store = open_store(
                kind,
                StoreConfig::in_memory()
                    .with_memory_budget(1 << 20)
                    .with_page_size(4096),
            )
            .unwrap();
            store.put(1, &[1, 2, 3]).unwrap();
            assert_eq!(store.get(1).unwrap(), vec![1, 2, 3], "{}", kind.name());
            assert!(store.get(2).unwrap_err().is_not_found());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            BackendKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), BackendKind::ALL.len());
    }

    #[test]
    fn only_mlkv_enables_the_mlkv_layer() {
        assert!(BackendKind::Mlkv.is_mlkv());
        for kind in [
            BackendKind::Faster,
            BackendKind::RocksDbLike,
            BackendKind::WiredTigerLike,
            BackendKind::InMemory,
        ] {
            assert!(!kind.is_mlkv());
        }
    }
}
