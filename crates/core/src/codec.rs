//! Encoding of embedding vectors as key-value store values.
//!
//! Embedding vectors are fixed-dimension `f32` slices; they are stored as
//! little-endian byte strings of length `4 * dim`.

use mlkv_storage::{StorageError, StorageResult};

/// Encode an `f32` vector into its byte representation.
pub fn encode_vector(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a byte string produced by [`encode_vector`], checking that it matches
/// the expected dimension.
pub fn decode_vector(bytes: &[u8], dim: usize) -> StorageResult<Vec<f32>> {
    if bytes.len() != dim * 4 {
        return Err(StorageError::Corruption(format!(
            "embedding value has {} bytes, expected {} (dim {})",
            bytes.len(),
            dim * 4,
            dim
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

/// Deterministically initialise an embedding vector for `key`: uniform values in
/// `[-scale, scale)` derived from a per-key splitmix64 stream. Every worker that
/// races to initialise the same key produces identical bytes, so initialisation
/// requires no coordination.
pub fn init_vector(key: u64, dim: usize, scale: f32, seed: u64) -> Vec<f32> {
    let mut state = key ^ seed.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..dim)
        .map(|_| {
            let r = (next() >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
            (r * 2.0 - 1.0) * scale
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let v = vec![1.0f32, -2.5, 0.0, f32::MAX, f32::MIN_POSITIVE];
        let bytes = encode_vector(&v);
        assert_eq!(bytes.len(), 20);
        assert_eq!(decode_vector(&bytes, 5).unwrap(), v);
    }

    #[test]
    fn decode_rejects_wrong_dimension() {
        let bytes = encode_vector(&[1.0, 2.0]);
        assert!(decode_vector(&bytes, 3).is_err());
        assert!(decode_vector(&bytes[..7], 2).is_err());
    }

    #[test]
    fn init_is_deterministic_and_bounded() {
        let a = init_vector(42, 16, 0.1, 7);
        let b = init_vector(42, 16, 0.1, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|x| x.abs() <= 0.1));
        // Different key or seed changes the vector.
        assert_ne!(init_vector(43, 16, 0.1, 7), a);
        assert_ne!(init_vector(42, 16, 0.1, 8), a);
        // Not all elements identical.
        assert!(a.iter().any(|x| (x - a[0]).abs() > 1e-9));
    }

    #[test]
    fn empty_vector_roundtrip() {
        assert_eq!(encode_vector(&[]), Vec::<u8>::new());
        assert_eq!(decode_vector(&[], 0).unwrap(), Vec::<f32>::new());
    }
}
