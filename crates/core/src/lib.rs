//! # MLKV
//!
//! Reproduction of **MLKV: Efficiently Scaling up Large Embedding Model Training
//! with Disk-based Key-Value Storage** (ICDE 2025).
//!
//! MLKV is a data storage framework that lets embedding-model training
//! frameworks scale beyond memory by storing embedding tables in a disk-based
//! key-value store while addressing the two problems that normally make that
//! slow or inaccurate:
//!
//! * **Data stalls** are hidden by [`EmbeddingTable::lookahead`] — *look-ahead
//!   prefetching* that copies soon-to-be-needed records from disk into the
//!   storage engine's memory buffer (or into an application cache) ahead of
//!   time, beyond the staleness window (paper §III-C2).
//! * **Staleness** is bounded per record by a latch-free vector clock packed
//!   into the 64-bit record word ([`RecordWord`], paper Figure 5(a)); the
//!   staleness bound selects BSP / SSP / ASP training (paper §III-C1).
//!
//! The user-facing API mirrors the paper's Figure 3, with a **batch-first**
//! surface: a training step is one `gather`, one `apply_gradients`, and one
//! `lookahead` — each a single batched call all the way down to the storage
//! engine:
//!
//! ```
//! use mlkv::{BackendKind, LookaheadDest, Mlkv};
//!
//! // nn_model, emb_tables = MLKV.Open(model_id, dim, staleness_bound)
//! let model = Mlkv::builder("quickstart")
//!     .dim(16)
//!     .staleness_bound(4)
//!     .backend(BackendKind::Mlkv)
//!     .build()
//!     .unwrap();
//!
//! // Training loop: gather -> forward/backward (your framework) -> scatter.
//! let keys = vec![10, 42, 77];
//! let emb_values = model.gather(&keys).unwrap();
//! let grads: Vec<Vec<f32>> = emb_values.iter().map(|v| vec![0.01; v.len()]).collect();
//! let updates: Vec<(u64, &[f32])> = keys
//!     .iter()
//!     .zip(&grads)
//!     .map(|(k, g)| (*k, g.as_slice()))
//!     .collect();
//! model.apply_gradients(&updates, 0.1).unwrap();
//!
//! // Tell MLKV which keys the *next* batches will touch.
//! model.lookahead(&[100, 101, 102], LookaheadDest::StorageBuffer);
//! ```
//!
//! The storage engines themselves live in sibling crates (`mlkv-faster`,
//! `mlkv-lsm`, `mlkv-btree`); this crate layers the MLKV semantics on top of any
//! of them through the [`BackendKind`] factory.

pub mod backend;
pub mod codec;
pub mod model;
pub mod prefetch;
pub mod record_word;
pub mod staleness;
pub mod stats;
pub mod table;

pub use backend::{open_store, BackendKind};
pub use model::{EmbeddingModel, EmbeddingModelBuilder, Mlkv};
pub use prefetch::{LookaheadDest, PrefetchStats, Prefetcher};
pub use record_word::{AcquireOutcome, AtomicRecordWord, RecordWord};
pub use staleness::{ConsistencyMode, StalenessController, StalenessStats};
pub use stats::{TableStats, TableStatsSnapshot};
pub use table::{EmbeddingTable, TableBuilder, TableOptions};

// Re-export the storage-facing types users need when configuring backends.
pub use mlkv_storage::{
    BatchExecutor, DurabilityMode, IoBackend, KvStore, StorageError, StorageResult, StoreConfig,
    WriteBatch,
};
