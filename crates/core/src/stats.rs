//! Table-level operation statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Point-in-time copy of [`TableStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TableStatsSnapshot {
    /// Embedding vectors fetched through `Get`.
    pub gets: u64,
    /// Embedding vectors written through `Put`/`Rmw`.
    pub puts: u64,
    /// Gets served from the application cache.
    pub cache_hits: u64,
    /// Keys lazily initialised because they had never been written.
    pub initialised: u64,
    /// Nanoseconds spent inside `Get` calls (storage + staleness wait).
    pub get_ns: u64,
    /// Nanoseconds spent inside `Put`/`Rmw` calls.
    pub put_ns: u64,
}

/// Atomic operation counters kept by an [`crate::EmbeddingTable`].
#[derive(Debug, Default)]
pub struct TableStats {
    gets: AtomicU64,
    puts: AtomicU64,
    cache_hits: AtomicU64,
    initialised: AtomicU64,
    get_ns: AtomicU64,
    put_ns: AtomicU64,
}

impl TableStats {
    /// Create zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_get(&self, n: u64, ns: u64) {
        self.gets.fetch_add(n, Ordering::Relaxed);
        self.get_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn record_put(&self, n: u64, ns: u64) {
        self.puts.fetch_add(n, Ordering::Relaxed);
        self.put_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_init(&self) {
        self.initialised.fetch_add(1, Ordering::Relaxed);
    }

    /// Take a snapshot of all counters.
    pub fn snapshot(&self) -> TableStatsSnapshot {
        TableStatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            initialised: self.initialised.load(Ordering::Relaxed),
            get_ns: self.get_ns.load(Ordering::Relaxed),
            put_ns: self.put_ns.load(Ordering::Relaxed),
        }
    }
}

impl TableStatsSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn delta(&self, earlier: &TableStatsSnapshot) -> TableStatsSnapshot {
        TableStatsSnapshot {
            gets: self.gets - earlier.gets,
            puts: self.puts - earlier.puts,
            cache_hits: self.cache_hits - earlier.cache_hits,
            initialised: self.initialised - earlier.initialised,
            get_ns: self.get_ns - earlier.get_ns,
            put_ns: self.put_ns - earlier.put_ns,
        }
    }

    /// Fraction of Gets answered from the application cache.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.gets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_delta() {
        let stats = TableStats::new();
        stats.record_get(10, 1000);
        stats.record_put(5, 500);
        stats.record_cache_hit();
        stats.record_init();
        let first = stats.snapshot();
        assert_eq!(first.gets, 10);
        assert_eq!(first.puts, 5);
        assert_eq!(first.cache_hits, 1);
        assert_eq!(first.initialised, 1);
        stats.record_get(2, 100);
        let second = stats.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.gets, 2);
        assert_eq!(d.get_ns, 100);
        assert_eq!(d.puts, 0);
    }

    #[test]
    fn cache_hit_ratio_handles_zero_gets() {
        assert_eq!(TableStatsSnapshot::default().cache_hit_ratio(), 0.0);
        let s = TableStatsSnapshot {
            gets: 4,
            cache_hits: 1,
            ..Default::default()
        };
        assert!((s.cache_hit_ratio() - 0.25).abs() < 1e-12);
    }
}
