//! The `Open` interface of Figure 3: creating an embedding model with a
//! controllable staleness bound and dimension.
//!
//! ```
//! use mlkv::Mlkv;
//!
//! // Figure 3, line 3: nn_model, emb_tables = MLKV.Open(model_id, dim, staleness_bound)
//! let model = Mlkv::open("my-ctr-model", 16, 4).unwrap();
//! let emb = model.table();
//! let values = emb.get(&[1, 2, 3]).unwrap();
//! assert_eq!(values.len(), 3);
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use mlkv_storage::{DurabilityMode, IoBackend, StorageResult, StoreConfig};

use crate::backend::{open_store, BackendKind};
use crate::table::{EmbeddingTable, TableOptions};

/// Entry point mirroring the paper's `MLKV.Open` call.
pub struct Mlkv;

impl Mlkv {
    /// Open an in-memory-device embedding model (convenient default used by the
    /// examples and tests). For disk-backed models use [`Mlkv::builder`].
    pub fn open(model_id: &str, dim: usize, staleness_bound: u32) -> StorageResult<EmbeddingModel> {
        Mlkv::builder(model_id)
            .dim(dim)
            .staleness_bound(staleness_bound)
            .build()
    }

    /// Start configuring an embedding model.
    pub fn builder(model_id: &str) -> EmbeddingModelBuilder {
        EmbeddingModelBuilder::new(model_id)
    }
}

/// Builder for [`EmbeddingModel`].
pub struct EmbeddingModelBuilder {
    model_id: String,
    backend: BackendKind,
    dir: Option<PathBuf>,
    memory_budget: usize,
    page_size: usize,
    io_coalescing: bool,
    io_gap_bytes: Option<usize>,
    io_backend: IoBackend,
    io_queue_depth: Option<usize>,
    durability: DurabilityMode,
    options: TableOptions,
}

impl EmbeddingModelBuilder {
    fn new(model_id: &str) -> Self {
        Self {
            model_id: model_id.to_string(),
            backend: BackendKind::Mlkv,
            dir: None,
            memory_budget: 256 << 20,
            page_size: 16 << 10,
            io_coalescing: true,
            io_gap_bytes: None,
            io_backend: IoBackend::Sync,
            io_queue_depth: None,
            durability: DurabilityMode::None,
            options: TableOptions::default(),
        }
    }

    /// Embedding dimension.
    pub fn dim(mut self, dim: usize) -> Self {
        self.options.dim = dim;
        self
    }

    /// Staleness bound: 0 = BSP, `u32::MAX` = ASP, otherwise SSP.
    pub fn staleness_bound(mut self, bound: u32) -> Self {
        self.options.staleness_bound = bound;
        self
    }

    /// Disable bounded-staleness enforcement entirely (leaves only the per-key
    /// memory overhead, see §IV-E).
    pub fn disable_staleness_enforcement(mut self) -> Self {
        self.options.enforce_staleness = false;
        self
    }

    /// Select the storage backend (default: MLKV's own hybrid-log engine).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Persist the model under `dir/<model_id>/` instead of an in-memory device.
    pub fn directory(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// In-memory buffer budget of the storage engine, in bytes.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Page size of the storage engine.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Number of background look-ahead workers.
    pub fn lookahead_workers(mut self, workers: usize) -> Self {
        self.options.lookahead_workers = workers;
        self
    }

    /// Batch-execution parallelism (`0` = auto-size from the host, `1` =
    /// serial/deterministic). Applies to both the storage engine (shard- and
    /// range-parallel `multi_get` / `multi_rmw`) and the table layer (bulk
    /// vector decode): one `gather` fans out over this many workers.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.options.parallelism = parallelism;
        self
    }

    /// Write-side concurrency of the storage engine (`0` = follow
    /// `parallelism`, `1` = the serial single-lock write path): the number of
    /// memtable shards (LSM), leaf-latch lanes (B+tree), buffer-pool shards,
    /// and mutation workers one `apply_gradients` scatter fans out over.
    /// Independent of [`EmbeddingModelBuilder::parallelism`], so write
    /// concurrency can be tuned — or pinned serial for determinism — without
    /// giving up parallel reads.
    pub fn write_shards(mut self, shards: usize) -> Self {
        self.options.write_shards = shards;
        self
    }

    /// Enable or disable coalesced cold-path batch reads (on by default):
    /// the storage engine merges a batch's near-adjacent device reads into
    /// few large ones. `false` restores the per-record read path.
    pub fn io_coalescing(mut self, coalesce: bool) -> Self {
        self.io_coalescing = coalesce;
        self
    }

    /// Maximum byte gap between two cold-read ranges that the I/O planner
    /// still merges into one device read (default:
    /// [`mlkv_storage::config::DEFAULT_IO_GAP_BYTES`]).
    pub fn io_gap_bytes(mut self, bytes: usize) -> Self {
        self.io_gap_bytes = Some(bytes);
        self
    }

    /// How cold-path batch reads reach the device: blocking `pread`s
    /// ([`IoBackend::Sync`], the default) or submission-queue reads that
    /// overlap each other and let workers park on completions
    /// ([`IoBackend::Async`]).
    pub fn io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Submission-queue depth of the async I/O backend (default:
    /// [`mlkv_storage::config::DEFAULT_IO_QUEUE_DEPTH`]).
    pub fn io_queue_depth(mut self, depth: usize) -> Self {
        self.io_queue_depth = Some(depth);
        self
    }

    /// Durability of acknowledged writes (default: [`DurabilityMode::None`],
    /// matching the paper's non-durable training runs). Under
    /// [`DurabilityMode::GroupCommit`] every acknowledged batch is
    /// write-ahead-logged and synced before `apply_gradients` returns — one
    /// sync per batch — and recovered on reopen; [`DurabilityMode::Buffered`]
    /// logs without syncing until an engine barrier (flush / checkpoint).
    pub fn durability(mut self, durability: DurabilityMode) -> Self {
        self.durability = durability;
        self
    }

    /// Application cache budget in bytes.
    pub fn app_cache_bytes(mut self, bytes: usize) -> Self {
        self.options.app_cache_bytes = bytes;
        self
    }

    /// Seed of the deterministic embedding initialiser.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Scale of the uniform random initialisation of unseen embeddings.
    pub fn init_scale(mut self, scale: f32) -> Self {
        self.options.init_scale = scale;
        self
    }

    /// Open the storage engine and build the embedding model.
    pub fn build(self) -> StorageResult<EmbeddingModel> {
        let mut config = StoreConfig::in_memory()
            .with_memory_budget(self.memory_budget)
            .with_page_size(self.page_size)
            .with_parallelism(self.options.parallelism)
            .with_write_shards(self.options.write_shards)
            .with_io_coalescing(self.io_coalescing)
            .with_io_backend(self.io_backend)
            .with_durability(self.durability);
        if let Some(gap) = self.io_gap_bytes {
            config = config.with_io_gap_bytes(gap);
        }
        if let Some(depth) = self.io_queue_depth {
            config = config.with_io_queue_depth(depth);
        }
        if let Some(dir) = &self.dir {
            config.dir = Some(dir.join(&self.model_id));
        }
        let store = open_store(self.backend, config)?;
        let table = EmbeddingTable::builder(store)
            .options(self.options)
            .build()?;
        Ok(EmbeddingModel {
            model_id: self.model_id,
            backend: self.backend,
            table: Arc::new(table),
        })
    }
}

/// An opened embedding model: a named, backend-bound [`EmbeddingTable`].
pub struct EmbeddingModel {
    model_id: String,
    backend: BackendKind,
    table: Arc<EmbeddingTable>,
}

impl EmbeddingModel {
    /// The model identifier passed to `Open`.
    pub fn model_id(&self) -> &str {
        &self.model_id
    }

    /// The backend storing this model.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The embedding table (`emb_tables` in Figure 3).
    pub fn table(&self) -> Arc<EmbeddingTable> {
        Arc::clone(&self.table)
    }
}

impl std::ops::Deref for EmbeddingModel {
    type Target = EmbeddingTable;

    fn deref(&self) -> &Self::Target {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_matches_figure_3_usage() {
        let model = Mlkv::open("test-model", 8, 4).unwrap();
        assert_eq!(model.model_id(), "test-model");
        assert_eq!(model.backend(), BackendKind::Mlkv);
        assert_eq!(model.dim(), 8);
        assert_eq!(model.mode().bound(), 4);
        // Figure 3 style usage through Deref.
        let values = model.get(&[1, 2, 3]).unwrap();
        assert_eq!(values.len(), 3);
        model.put(&[1], &[vec![0.5; 8]]).unwrap();
        assert_eq!(model.get_one(1).unwrap(), vec![0.5; 8]);
    }

    #[test]
    fn builder_configures_backend_and_staleness() {
        let model = Mlkv::builder("cfg")
            .dim(4)
            .staleness_bound(u32::MAX)
            .backend(BackendKind::RocksDbLike)
            .memory_budget(1 << 20)
            .lookahead_workers(2)
            .app_cache_bytes(1 << 16)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(model.backend(), BackendKind::RocksDbLike);
        assert_eq!(model.mode().name(), "ASP");
        model.put_one(1, &[1.0; 4]).unwrap();
        assert_eq!(model.get_one(1).unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn io_knobs_reach_the_store_and_preserve_results() {
        for coalesce in [true, false] {
            for io_backend in [IoBackend::Sync, IoBackend::Async] {
                let model = Mlkv::builder("io-knobs")
                    .dim(4)
                    .backend(BackendKind::Faster)
                    .memory_budget(16 << 10)
                    .page_size(1 << 10)
                    .io_coalescing(coalesce)
                    .io_gap_bytes(256)
                    .io_backend(io_backend)
                    .io_queue_depth(8)
                    .build()
                    .unwrap();
                let keys: Vec<u64> = (0..500).collect();
                let rows = vec![vec![0.25f32; 4]; keys.len()];
                model.put(&keys, &rows).unwrap();
                // Larger-than-memory: gathers hit the cold path either way.
                let got = model.get(&keys).unwrap();
                assert_eq!(got, rows, "coalesce={coalesce} io_backend={io_backend}");
            }
        }
    }

    #[test]
    fn disk_backed_model_persists_under_model_directory() {
        let dir = std::env::temp_dir().join(format!("mlkv-model-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let model = Mlkv::builder("persisted")
                .dim(4)
                .directory(&dir)
                .memory_budget(1 << 20)
                .build()
                .unwrap();
            model.put_one(9, &[3.0; 4]).unwrap();
            model.flush().unwrap();
        }
        assert!(dir.join("persisted").join("hlog.dat").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_model_recovers_acknowledged_updates_on_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "mlkv-model-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let open = || {
            Mlkv::builder("durable")
                .dim(4)
                .directory(&dir)
                .memory_budget(1 << 20)
                .durability(DurabilityMode::GroupCommit { window: 64 })
                .build()
                .unwrap()
        };
        let expected = {
            let model = open();
            model.put_one(9, &[3.0; 4]).unwrap();
            let updates: Vec<(u64, &[f32])> = vec![(9, &[0.5; 4])];
            model.apply_gradients(&updates, 1.0).unwrap();
            // No flush, no checkpoint: the WAL alone must carry the state.
            model.get_one(9).unwrap()
        };
        let model = open();
        assert_eq!(model.get_one(9).unwrap(), expected);
        assert_eq!(expected, vec![2.5f32; 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_enforcement_never_tracks_stalls() {
        let model = Mlkv::builder("free")
            .dim(4)
            .staleness_bound(0)
            .disable_staleness_enforcement()
            .build()
            .unwrap();
        for _ in 0..10 {
            model.get_one(1).unwrap();
        }
        assert_eq!(model.staleness_stats().gets, 0);
        assert_eq!(model.staleness_of(1), 0);
    }
}
