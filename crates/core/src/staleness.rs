//! Bounded-staleness consistency control (paper §III-C1).
//!
//! The consistency model is selected per embedding model when it is opened:
//!
//! * `staleness_bound == 0`            → Bulk Synchronous Parallel (BSP)
//! * `staleness_bound == u32::MAX`     → fully Asynchronous Parallel (ASP)
//! * anything in between               → Stale Synchronous Parallel (SSP)
//!
//! Enforcement is *per embedding record*: every key is associated with a
//! [`AtomicRecordWord`] vector clock, and the Get/Put protocol from
//! `record_word` is applied to it. The controller also measures the time Gets
//! spend blocked on the staleness bound — that is exactly the "data stall"
//! component that Figures 2 and 8 report.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use mlkv_storage::{StorageError, StorageResult};

use crate::record_word::{AcquireOutcome, AtomicRecordWord};

/// Consistency mode of an embedding model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyMode {
    /// Bulk Synchronous Parallel: no staleness tolerated (bound 0).
    Bsp,
    /// Stale Synchronous Parallel with the given bound.
    Ssp(u32),
    /// Fully asynchronous: unbounded staleness.
    Asp,
}

impl ConsistencyMode {
    /// Construct the mode from a raw bound, as the `Open` interface does.
    pub fn from_bound(bound: u32) -> Self {
        match bound {
            0 => ConsistencyMode::Bsp,
            u32::MAX => ConsistencyMode::Asp,
            b => ConsistencyMode::Ssp(b),
        }
    }

    /// The numeric staleness bound this mode enforces.
    pub fn bound(&self) -> u32 {
        match self {
            ConsistencyMode::Bsp => 0,
            ConsistencyMode::Ssp(b) => *b,
            ConsistencyMode::Asp => u32::MAX,
        }
    }

    /// Human-readable name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            ConsistencyMode::Bsp => "BSP",
            ConsistencyMode::Ssp(_) => "SSP",
            ConsistencyMode::Asp => "ASP",
        }
    }
}

/// Aggregate staleness-control statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StalenessStats {
    /// Number of Get acquisitions that had to wait at least once.
    pub blocked_gets: u64,
    /// Total nanoseconds Gets spent blocked on the staleness bound.
    pub stall_ns: u64,
    /// Number of Get acquisitions performed.
    pub gets: u64,
    /// Number of Put acquisitions performed.
    pub puts: u64,
}

/// Per-key vector clocks plus the acquisition protocol.
pub struct StalenessController {
    mode: ConsistencyMode,
    enabled: bool,
    shards: Vec<RwLock<HashMap<u64, Arc<AtomicRecordWord>>>>,
    blocked_gets: AtomicU64,
    stall_ns: AtomicU64,
    gets: AtomicU64,
    puts: AtomicU64,
    /// Maximum time a Get may stay blocked before giving up.
    wait_timeout: Duration,
}

/// RAII guard for an acquired record lock; releases on drop.
#[derive(Debug)]
pub struct RecordGuard {
    word: Arc<AtomicRecordWord>,
    mark_replaced: bool,
    released: bool,
}

impl RecordGuard {
    /// Mark that the protected operation relocated the record (sets the
    /// Replaced bit on release).
    pub fn mark_replaced(&mut self) {
        self.mark_replaced = true;
    }

    /// Release explicitly (otherwise happens on drop).
    pub fn release(mut self) {
        self.do_release();
    }

    fn do_release(&mut self) {
        if !self.released {
            self.word.release(self.mark_replaced);
            self.released = true;
        }
    }
}

impl Drop for RecordGuard {
    fn drop(&mut self) {
        self.do_release();
    }
}

impl StalenessController {
    /// Create a controller for `mode`. When `enabled` is false the controller
    /// does no locking or waiting at all (the paper's "user disables bounded
    /// staleness consistency" case — memory overhead only).
    pub fn new(mode: ConsistencyMode, enabled: bool) -> Self {
        Self::with_timeout(mode, enabled, Duration::from_secs(10))
    }

    /// Like [`StalenessController::new`] with an explicit Get wait timeout.
    pub fn with_timeout(mode: ConsistencyMode, enabled: bool, wait_timeout: Duration) -> Self {
        Self {
            mode,
            enabled,
            shards: (0..64).map(|_| RwLock::new(HashMap::new())).collect(),
            blocked_gets: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            wait_timeout,
        }
    }

    /// The consistency mode being enforced.
    pub fn mode(&self) -> ConsistencyMode {
        self.mode
    }

    /// True when bounded staleness enforcement is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn shard_for(&self, key: u64) -> &RwLock<HashMap<u64, Arc<AtomicRecordWord>>> {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// The vector clock for `key`, creating it lazily.
    pub fn word(&self, key: u64) -> Arc<AtomicRecordWord> {
        {
            let shard = self.shard_for(key).read();
            if let Some(w) = shard.get(&key) {
                return Arc::clone(w);
            }
        }
        let mut shard = self.shard_for(key).write();
        Arc::clone(
            shard
                .entry(key)
                .or_insert_with(|| Arc::new(AtomicRecordWord::new())),
        )
    }

    /// Current staleness of `key` (0 when never accessed).
    pub fn staleness_of(&self, key: u64) -> u32 {
        let shard = self.shard_for(key).read();
        shard.get(&key).map(|w| w.staleness()).unwrap_or(0)
    }

    /// Number of keys with a materialised vector clock (the "memory overhead"
    /// the paper mentions when staleness enforcement is disabled).
    pub fn tracked_keys(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Acquire the record lock for a Get, waiting while the staleness bound
    /// blocks it. Returns `None` when enforcement is disabled.
    pub fn acquire_get(&self, key: u64) -> StorageResult<Option<RecordGuard>> {
        if !self.enabled {
            return Ok(None);
        }
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.wait_acquire_get(key).map(Some)
    }

    /// The waiting core of a Get acquisition (stats are counted by the caller
    /// so batch admissions can amortise them).
    fn wait_acquire_get(&self, key: u64) -> StorageResult<RecordGuard> {
        let word = self.word(key);
        let bound = self.mode.bound();
        let mut blocked_since: Option<Instant> = None;
        loop {
            match word.try_acquire_get(bound) {
                AcquireOutcome::Acquired => {
                    if let Some(since) = blocked_since {
                        self.stall_ns
                            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                    return Ok(RecordGuard {
                        word,
                        mark_replaced: false,
                        released: false,
                    });
                }
                AcquireOutcome::Contended => {
                    std::hint::spin_loop();
                }
                AcquireOutcome::StalenessBlocked => {
                    let since = *blocked_since.get_or_insert_with(|| {
                        self.blocked_gets.fetch_add(1, Ordering::Relaxed);
                        Instant::now()
                    });
                    if since.elapsed() > self.wait_timeout {
                        self.stall_ns
                            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        return Err(StorageError::StalenessTimeout { key, bound });
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Admit a whole batch of Gets in a single controller call: one stats
    /// update for the batch, then per-key admission against the staleness
    /// bound. Each key's record lock is released as soon as that key is
    /// admitted (no hold-and-wait), so a batch can never deadlock against
    /// concurrent writers. Returns immediately when enforcement is disabled.
    pub fn admit_get_batch(&self, keys: &[u64]) -> StorageResult<()> {
        if !self.enabled || keys.is_empty() {
            return Ok(());
        }
        self.gets.fetch_add(keys.len() as u64, Ordering::Relaxed);
        for &key in keys {
            self.wait_acquire_get(key)?.release();
        }
        Ok(())
    }

    /// Acquire the record lock for a Put (never blocks on the bound). Returns
    /// `None` when enforcement is disabled.
    pub fn acquire_put(&self, key: u64) -> StorageResult<Option<RecordGuard>> {
        if !self.enabled {
            return Ok(None);
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(Some(self.lock_put(key)))
    }

    /// Acquire the record locks for a batch of Puts in a single controller
    /// call, holding all guards until the returned vector is dropped. Keys are
    /// locked in sorted deduplicated order, so concurrent batches cannot
    /// deadlock against each other; Put acquisitions never wait on the
    /// staleness bound, only on the (always short-lived) record locks.
    /// Returns `None` when enforcement is disabled.
    pub fn acquire_put_batch(&self, keys: &[u64]) -> StorageResult<Option<Vec<RecordGuard>>> {
        if !self.enabled {
            return Ok(None);
        }
        let mut unique: Vec<u64> = keys.to_vec();
        unique.sort_unstable();
        unique.dedup();
        self.puts.fetch_add(unique.len() as u64, Ordering::Relaxed);
        Ok(Some(unique.into_iter().map(|k| self.lock_put(k)).collect()))
    }

    /// Acquire staleness-neutral latches on `keys` (sorted and deduplicated
    /// internally, so concurrent batches cannot deadlock). The latches exclude
    /// concurrent Gets/Puts on those records without touching their vector
    /// clocks — used by maintenance writes such as materialising lazily
    /// initialised records. Returns `None` when enforcement is disabled.
    pub fn lock_records(&self, keys: &[u64]) -> Option<Vec<RecordGuard>> {
        if !self.enabled {
            return None;
        }
        let mut unique: Vec<u64> = keys.to_vec();
        unique.sort_unstable();
        unique.dedup();
        Some(
            unique
                .into_iter()
                .map(|key| {
                    let word = self.word(key);
                    loop {
                        match word.try_acquire_latch() {
                            AcquireOutcome::Acquired => {
                                return RecordGuard {
                                    word,
                                    mark_replaced: false,
                                    released: false,
                                }
                            }
                            _ => std::hint::spin_loop(),
                        }
                    }
                })
                .collect(),
        )
    }

    /// Spin until the Put lock for `key` is held (stats counted by callers).
    fn lock_put(&self, key: u64) -> RecordGuard {
        let word = self.word(key);
        loop {
            match word.try_acquire_put() {
                AcquireOutcome::Acquired => {
                    return RecordGuard {
                        word,
                        mark_replaced: false,
                        released: false,
                    }
                }
                _ => std::hint::spin_loop(),
            }
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> StalenessStats {
        StalenessStats {
            blocked_gets: self.blocked_gets.load(Ordering::Relaxed),
            stall_ns: self.stall_ns.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_mapping_matches_paper() {
        assert_eq!(ConsistencyMode::from_bound(0), ConsistencyMode::Bsp);
        assert_eq!(ConsistencyMode::from_bound(4), ConsistencyMode::Ssp(4));
        assert_eq!(ConsistencyMode::from_bound(u32::MAX), ConsistencyMode::Asp);
        assert_eq!(ConsistencyMode::Bsp.bound(), 0);
        assert_eq!(ConsistencyMode::Ssp(7).bound(), 7);
        assert_eq!(ConsistencyMode::Asp.bound(), u32::MAX);
        assert_eq!(ConsistencyMode::Bsp.name(), "BSP");
        assert_eq!(ConsistencyMode::Ssp(1).name(), "SSP");
        assert_eq!(ConsistencyMode::Asp.name(), "ASP");
    }

    #[test]
    fn disabled_controller_never_blocks() {
        let ctl = StalenessController::new(ConsistencyMode::Bsp, false);
        for _ in 0..10 {
            assert!(ctl.acquire_get(1).unwrap().is_none());
        }
        assert_eq!(ctl.stats().gets, 0);
        assert_eq!(ctl.tracked_keys(), 0);
    }

    #[test]
    fn asp_mode_never_blocks() {
        let ctl = StalenessController::new(ConsistencyMode::Asp, true);
        for _ in 0..100 {
            let guard = ctl.acquire_get(7).unwrap().unwrap();
            guard.release();
        }
        assert_eq!(ctl.staleness_of(7), 100);
        assert_eq!(ctl.stats().blocked_gets, 0);
    }

    #[test]
    fn ssp_blocks_after_bound_and_unblocks_on_put() {
        let ctl = Arc::new(StalenessController::with_timeout(
            ConsistencyMode::Ssp(2),
            true,
            Duration::from_secs(5),
        ));
        // Three gets allowed (staleness 0,1,2), the fourth blocks.
        for _ in 0..3 {
            ctl.acquire_get(5).unwrap().unwrap().release();
        }
        let ctl2 = Arc::clone(&ctl);
        let unblocker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            ctl2.acquire_put(5).unwrap().unwrap().release();
        });
        let start = Instant::now();
        let guard = ctl.acquire_get(5).unwrap().unwrap();
        guard.release();
        assert!(start.elapsed() >= Duration::from_millis(40));
        unblocker.join().unwrap();
        let stats = ctl.stats();
        assert_eq!(stats.blocked_gets, 1);
        assert!(stats.stall_ns > 0);
    }

    #[test]
    fn bsp_get_times_out_without_matching_put() {
        let ctl = StalenessController::with_timeout(
            ConsistencyMode::Bsp,
            true,
            Duration::from_millis(30),
        );
        ctl.acquire_get(1).unwrap().unwrap().release();
        let err = ctl.acquire_get(1).unwrap_err();
        assert!(matches!(err, StorageError::StalenessTimeout { key: 1, .. }));
    }

    #[test]
    fn guard_drop_releases_lock() {
        let ctl = StalenessController::new(ConsistencyMode::Asp, true);
        {
            let _guard = ctl.acquire_get(3).unwrap().unwrap();
            assert!(ctl.word(3).load().locked);
        }
        assert!(!ctl.word(3).load().locked);
    }

    #[test]
    fn mark_replaced_propagates_to_word() {
        let ctl = StalenessController::new(ConsistencyMode::Asp, true);
        let mut guard = ctl.acquire_put(9).unwrap().unwrap();
        guard.mark_replaced();
        guard.release();
        assert!(ctl.word(9).load().replaced);
    }

    #[test]
    fn batch_admission_counts_and_enforces_like_per_key() {
        let ctl = StalenessController::new(ConsistencyMode::Ssp(10), true);
        ctl.admit_get_batch(&[1, 2, 3]).unwrap();
        assert_eq!(ctl.stats().gets, 3);
        assert_eq!(ctl.staleness_of(1), 1);
        assert_eq!(ctl.staleness_of(3), 1);
        let guards = ctl.acquire_put_batch(&[3, 1, 1]).unwrap().unwrap();
        // Duplicates are deduplicated: one put admission per unique key.
        assert_eq!(guards.len(), 2);
        assert_eq!(ctl.stats().puts, 2);
        drop(guards);
        assert_eq!(ctl.staleness_of(1), 0);
        assert_eq!(ctl.staleness_of(3), 0);
        assert_eq!(ctl.staleness_of(2), 1);
    }

    #[test]
    fn batch_get_admission_blocks_on_the_bound_and_unblocks_on_put() {
        let ctl = Arc::new(StalenessController::with_timeout(
            ConsistencyMode::Ssp(1),
            true,
            Duration::from_secs(5),
        ));
        ctl.admit_get_batch(&[5, 5]).unwrap(); // staleness of 5 is now 2 > bound for further gets
        let ctl2 = Arc::clone(&ctl);
        let unblocker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            drop(ctl2.acquire_put_batch(&[5]).unwrap());
        });
        let start = Instant::now();
        ctl.admit_get_batch(&[5]).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(40));
        unblocker.join().unwrap();
        assert_eq!(ctl.stats().blocked_gets, 1);
    }

    #[test]
    fn disabled_controller_skips_batch_admission() {
        let ctl = StalenessController::new(ConsistencyMode::Bsp, false);
        ctl.admit_get_batch(&[1, 2, 3]).unwrap();
        assert!(ctl.acquire_put_batch(&[1, 2]).unwrap().is_none());
        assert_eq!(ctl.stats().gets, 0);
        assert_eq!(ctl.tracked_keys(), 0);
    }

    #[test]
    fn staleness_is_tracked_per_key() {
        let ctl = StalenessController::new(ConsistencyMode::Ssp(10), true);
        ctl.acquire_get(1).unwrap().unwrap().release();
        ctl.acquire_get(1).unwrap().unwrap().release();
        ctl.acquire_get(2).unwrap().unwrap().release();
        assert_eq!(ctl.staleness_of(1), 2);
        assert_eq!(ctl.staleness_of(2), 1);
        assert_eq!(ctl.staleness_of(3), 0);
        assert_eq!(ctl.tracked_keys(), 2);
        ctl.acquire_put(1).unwrap().unwrap().release();
        assert_eq!(ctl.staleness_of(1), 1);
    }
}
