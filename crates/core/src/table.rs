//! The embedding table: MLKV's user-facing `Get` / `Put` / `Rmw` / `Lookahead`
//! interface over a key-value backend (paper §III-A, Figure 3).
//!
//! The table is **batch-first**: a training step calls
//! [`EmbeddingTable::gather`] once for its forward pass and
//! [`EmbeddingTable::apply_gradients`] once for its backward pass, and each of
//! those performs a single staleness-controller admission, a single bulk cache
//! probe, and a single batched storage call — instead of per-key dispatch,
//! per-key locking and per-key cache probes.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mlkv_storage::exec::BatchExecutor;
use mlkv_storage::{KvStore, ShardedLruCache, StorageError, StorageResult, WriteBatch};

use crate::codec::{decode_vector, encode_vector, init_vector};
use crate::prefetch::{LookaheadDest, PrefetchStats, Prefetcher};
use crate::staleness::{ConsistencyMode, StalenessController, StalenessStats};
use crate::stats::{TableStats, TableStatsSnapshot};

/// Minimum number of f32 elements (`batch keys × dim`) a gather must decode
/// before the table fans the decode out over its executor; below this the
/// spawn cost dominates the copy.
const DECODE_PARALLEL_MIN_ELEMS: usize = 1 << 16;

/// Options controlling an embedding table.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Embedding dimension.
    pub dim: usize,
    /// Staleness bound (0 = BSP, `u32::MAX` = ASP, otherwise SSP).
    pub staleness_bound: u32,
    /// Whether bounded-staleness enforcement is active. Disabling it leaves only
    /// the per-key memory overhead, as described in §IV-E.
    pub enforce_staleness: bool,
    /// Number of background look-ahead workers.
    pub lookahead_workers: usize,
    /// Byte budget of the application-side cache.
    pub app_cache_bytes: usize,
    /// Scale of the uniform random initialisation of unseen embeddings.
    pub init_scale: f32,
    /// Seed of the deterministic initialiser.
    pub seed: u64,
    /// Worker threads a single `gather` / `apply_gradients` may fan out over
    /// at the table layer (vector decode of large batches). `0` = auto-size
    /// from the host, `1` = serial. The storage engine has its own
    /// `StoreConfig::parallelism`; `Mlkv::builder(..).parallelism(n)` sets
    /// both at once.
    pub parallelism: usize,
    /// Write-side concurrency of the storage engine (`StoreConfig::
    /// write_shards`): memtable shards, leaf-latch lanes, and mutation
    /// workers one `apply_gradients` scatter may fan out over. `0` = follow
    /// `parallelism`, `1` = serial write path. The table layer itself never
    /// fans writes out — the engine does — so this field only exists to let
    /// the model-level builder carry the knob alongside the other options.
    pub write_shards: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self {
            dim: 16,
            staleness_bound: 0,
            enforce_staleness: true,
            lookahead_workers: 1,
            app_cache_bytes: 8 << 20,
            init_scale: 0.05,
            seed: 42,
            parallelism: 0,
            write_shards: 0,
        }
    }
}

/// Fluent constructor for an [`EmbeddingTable`] over an already-opened store.
///
/// This replaces struct-literal [`TableOptions`] construction; the full open
/// path (backend selection included) is `Mlkv::builder(..)` in the `model`
/// module, which delegates here.
///
/// ```
/// use std::sync::Arc;
/// use mlkv::EmbeddingTable;
/// use mlkv_storage::MemStore;
///
/// let table = EmbeddingTable::builder(Arc::new(MemStore::new()))
///     .dim(8)
///     .staleness_bound(4)
///     .build()
///     .unwrap();
/// assert_eq!(table.dim(), 8);
/// ```
pub struct TableBuilder {
    store: Arc<dyn KvStore>,
    options: TableOptions,
}

impl TableBuilder {
    /// Embedding dimension (must be positive).
    pub fn dim(mut self, dim: usize) -> Self {
        self.options.dim = dim;
        self
    }

    /// Staleness bound: 0 = BSP, `u32::MAX` = ASP, otherwise SSP.
    pub fn staleness_bound(mut self, bound: u32) -> Self {
        self.options.staleness_bound = bound;
        self
    }

    /// Enable or disable bounded-staleness enforcement (disabling leaves only
    /// the per-key memory overhead, §IV-E).
    pub fn enforce_staleness(mut self, enforce: bool) -> Self {
        self.options.enforce_staleness = enforce;
        self
    }

    /// Number of background look-ahead workers.
    pub fn lookahead_workers(mut self, workers: usize) -> Self {
        self.options.lookahead_workers = workers;
        self
    }

    /// Byte budget of the application-side cache.
    pub fn app_cache_bytes(mut self, bytes: usize) -> Self {
        self.options.app_cache_bytes = bytes;
        self
    }

    /// Scale of the uniform random initialisation of unseen embeddings.
    pub fn init_scale(mut self, scale: f32) -> Self {
        self.options.init_scale = scale;
        self
    }

    /// Seed of the deterministic initialiser.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Table-layer batch parallelism (`0` = auto, `1` = serial). Note this
    /// knob covers only the table's own work (bulk vector decode); pass the
    /// same value to `StoreConfig::with_parallelism` — or use
    /// `Mlkv::builder(..).parallelism(n)`, which sets both — to parallelise
    /// the storage engine's batch execution too.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.options.parallelism = parallelism;
        self
    }

    /// Record the write-side shard count (`0` = follow `parallelism`, `1` =
    /// serial). The store passed to [`EmbeddingTable::builder`] is already
    /// open, so this does not re-shard it — pass the same value to
    /// `StoreConfig::with_write_shards` (or use
    /// `Mlkv::builder(..).write_shards(n)`, which sets both) to size the
    /// engine's write path.
    pub fn write_shards(mut self, shards: usize) -> Self {
        self.options.write_shards = shards;
        self
    }

    /// Replace every option at once (used by the model-level builder).
    pub fn options(mut self, options: TableOptions) -> Self {
        self.options = options;
        self
    }

    /// Build the table.
    pub fn build(self) -> StorageResult<EmbeddingTable> {
        EmbeddingTable::from_options(self.store, self.options)
    }
}

/// An embedding table backed by a key-value store.
///
/// All methods are thread-safe; training workers share the table through an
/// `Arc`.
pub struct EmbeddingTable {
    store: Arc<dyn KvStore>,
    options: TableOptions,
    controller: StalenessController,
    cache: Arc<ShardedLruCache>,
    prefetcher: Prefetcher,
    stats: TableStats,
    executor: BatchExecutor,
}

impl EmbeddingTable {
    /// Start configuring a table over an already-opened `store`.
    pub fn builder(store: Arc<dyn KvStore>) -> TableBuilder {
        TableBuilder {
            store,
            options: TableOptions::default(),
        }
    }

    /// Construction behind [`TableBuilder::build`].
    fn from_options(store: Arc<dyn KvStore>, options: TableOptions) -> StorageResult<Self> {
        if options.dim == 0 {
            return Err(StorageError::InvalidArgument(
                "embedding dimension must be positive".into(),
            ));
        }
        let mode = ConsistencyMode::from_bound(options.staleness_bound);
        let controller = StalenessController::new(mode, options.enforce_staleness);
        let cache = Arc::new(ShardedLruCache::new(
            options.app_cache_bytes.max(1 << 10),
            16,
        ));
        let prefetcher = Prefetcher::new(
            Arc::clone(&store),
            Arc::clone(&cache),
            options.lookahead_workers,
        );
        Ok(Self {
            executor: BatchExecutor::new(options.parallelism),
            store,
            options,
            controller,
            cache,
            prefetcher,
            stats: TableStats::new(),
        })
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.options.dim
    }

    /// The consistency mode enforced by this table.
    pub fn mode(&self) -> ConsistencyMode {
        self.controller.mode()
    }

    /// The table's options.
    pub fn options(&self) -> &TableOptions {
        &self.options
    }

    /// The underlying key-value store.
    pub fn store(&self) -> &Arc<dyn KvStore> {
        &self.store
    }

    /// Fetch the embedding for one key, lazily initialising it when unseen.
    /// This is the forward-pass path (`Get` in Figure 3, line 9).
    pub fn get_one(&self, key: u64) -> StorageResult<Vec<f32>> {
        let start = Instant::now();
        let guard = self.controller.acquire_get(key)?;
        let result = self.read_or_init(key);
        drop(guard);
        self.stats.record_get(1, start.elapsed().as_nanos() as u64);
        result
    }

    /// Fetch embeddings for a batch of keys (order preserved, duplicates
    /// allowed), lazily initialising unseen keys.
    ///
    /// This is the batch-first forward-pass path: one staleness-controller
    /// admission for the whole batch, one bulk application-cache probe, one
    /// [`KvStore::multi_get`] for the cache misses, and one
    /// [`KvStore::write_batch`] materialising every lazily-initialised key.
    ///
    /// ```
    /// use mlkv::Mlkv;
    ///
    /// let model = Mlkv::open("gather-doc", 4, 0).unwrap();
    /// let rows = model.gather(&[1, 2, 1]).unwrap();
    /// assert_eq!(rows.len(), 3);
    /// assert_eq!(rows[0], rows[2]); // duplicates fan out from one probe
    /// ```
    pub fn gather(&self, keys: &[u64]) -> StorageResult<Vec<Vec<f32>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let start = Instant::now();
        let mut unique: Vec<u64> = keys.to_vec();
        unique.sort_unstable();
        unique.dedup();
        // One admission per batch; each unique key counts as one Get against
        // its staleness clock, exactly like the per-key path on deduplicated
        // batches.
        self.controller.admit_get_batch(&unique)?;

        // Bulk cache probe, collecting the misses for one storage batch read.
        let mut values: HashMap<u64, Vec<f32>> = HashMap::with_capacity(unique.len());
        let mut missing: Vec<u64> = Vec::new();
        for &key in &unique {
            match self.cache.get(key) {
                Some(bytes) => {
                    self.stats.record_cache_hit();
                    values.insert(key, decode_vector(&bytes, self.options.dim)?);
                }
                None => missing.push(key),
            }
        }
        if !missing.is_empty() {
            let fetched = self.store.multi_get(&missing);
            // Decoding the fetched rows is per-key-independent CPU work, so
            // large batches fan it out over the table's executor (the storage
            // engine has already parallelised the reads themselves).
            let dim = self.options.dim;
            let decode_chunk = |keys_chunk: &[u64], fetched_chunk: &[StorageResult<Vec<u8>>]| {
                keys_chunk
                    .iter()
                    .zip(fetched_chunk)
                    .map(|(key, result)| {
                        let decoded = match result {
                            Ok(bytes) => decode_vector(bytes, dim).map(Some),
                            Err(e) if e.is_not_found() => Ok(None),
                            Err(e) => Err(e.clone_shallow()),
                        };
                        (*key, decoded)
                    })
                    .collect::<Vec<_>>()
            };
            // Gate on decoded *work* (elements), not key count: at small dims
            // the decode is a few hundred KB of copying at most and a second
            // thread::scope round (the engine's multi_get already paid one)
            // would cost more than it saves — while a few hundred keys of a
            // large dimension are worth fanning out even below the executor's
            // key-count cutoff (hence `execute_ungated`).
            let workers = if missing.len() * dim >= DECODE_PARALLEL_MIN_ELEMS {
                self.executor.parallelism().min(missing.len())
            } else {
                1
            };
            let decoded: Vec<(u64, StorageResult<Option<Vec<f32>>>)> = if workers <= 1 {
                decode_chunk(&missing, &fetched)
            } else {
                let chunk = missing.len().div_ceil(workers);
                let jobs: Vec<_> = missing
                    .chunks(chunk)
                    .zip(fetched.chunks(chunk))
                    .map(|(keys_chunk, fetched_chunk)| {
                        let decode_chunk = &decode_chunk;
                        move || decode_chunk(keys_chunk, fetched_chunk)
                    })
                    .collect();
                self.executor
                    .execute_ungated(jobs)
                    .into_iter()
                    .flatten()
                    .collect()
            };
            let mut init_keys: Vec<u64> = Vec::new();
            for (key, result) in decoded {
                match result? {
                    Some(vector) => {
                        values.insert(key, vector);
                    }
                    None => init_keys.push(key),
                }
            }
            if !init_keys.is_empty() {
                // Materialise unseen keys under staleness-neutral record
                // latches, re-checking inside the rmw: a concurrent writer may
                // have landed between the multi_get and here, and its value
                // must win over the initialiser (the per-key path got the same
                // guarantee from holding the record lock across read+init).
                let latches = self.controller.lock_records(&init_keys);
                let (dim, scale, seed) =
                    (self.options.dim, self.options.init_scale, self.options.seed);
                let written = self
                    .store
                    .multi_rmw(&init_keys, &|i, current| match current {
                        Some(bytes) => bytes.to_vec(),
                        None => {
                            self.stats.record_init();
                            encode_vector(&init_vector(init_keys[i], dim, scale, seed))
                        }
                    });
                drop(latches);
                for (key, bytes) in init_keys.iter().zip(written?) {
                    values.insert(*key, decode_vector(&bytes, self.options.dim)?);
                }
            }
        }
        let out = keys
            .iter()
            .map(|k| values[k].clone())
            .collect::<Vec<Vec<f32>>>();
        self.stats
            .record_get(keys.len() as u64, start.elapsed().as_nanos() as u64);
        Ok(out)
    }

    /// Fetch embeddings for a batch of keys (alias of
    /// [`EmbeddingTable::gather`], kept for Figure 3 API continuity).
    pub fn get(&self, keys: &[u64]) -> StorageResult<Vec<Vec<f32>>> {
        self.gather(keys)
    }

    /// Upsert the embedding for one key. This is the backward-pass path (`Put`
    /// in Figure 3, line 17).
    pub fn put_one(&self, key: u64, value: &[f32]) -> StorageResult<()> {
        self.check_dim(value)?;
        let start = Instant::now();
        let guard = self.controller.acquire_put(key)?;
        let bytes = encode_vector(value);
        self.cache.invalidate(key);
        let result = self.store.put(key, &bytes);
        drop(guard);
        self.stats.record_put(1, start.elapsed().as_nanos() as u64);
        result
    }

    /// Upsert a batch of embeddings; `keys` and `values` must have equal
    /// length. One staleness admission and one [`KvStore::write_batch`] cover
    /// the whole batch; duplicate keys resolve last-occurrence-wins.
    pub fn put(&self, keys: &[u64], values: &[Vec<f32>]) -> StorageResult<()> {
        if keys.len() != values.len() {
            return Err(StorageError::InvalidArgument(format!(
                "put batch mismatch: {} keys vs {} values",
                keys.len(),
                values.len()
            )));
        }
        if keys.is_empty() {
            return Ok(());
        }
        for v in values {
            self.check_dim(v)?;
        }
        let start = Instant::now();
        let guards = self.controller.acquire_put_batch(keys)?;
        let mut batch = WriteBatch::new();
        for (k, v) in keys.iter().zip(values) {
            self.cache.invalidate(*k);
            batch.put(*k, encode_vector(v));
        }
        let result = self.store.write_batch(&batch);
        drop(guards);
        self.stats
            .record_put(keys.len() as u64, start.elapsed().as_nanos() as u64);
        result
    }

    /// Read-modify-write a single embedding: `f` receives the current vector
    /// (lazily initialised when unseen) and returns the new one. This maps to
    /// MLKV's `Rmw` interface used for sparse optimizer updates.
    pub fn rmw_one(&self, key: u64, f: impl FnOnce(&mut Vec<f32>)) -> StorageResult<Vec<f32>> {
        let start = Instant::now();
        let guard = self.controller.acquire_put(key)?;
        let mut current = self.read_or_init(key)?;
        f(&mut current);
        self.check_dim(&current)?;
        self.cache.invalidate(key);
        let bytes = encode_vector(&current);
        self.store.put(key, &bytes)?;
        drop(guard);
        self.stats.record_put(1, start.elapsed().as_nanos() as u64);
        Ok(current)
    }

    /// Apply SGD-style gradients: `value -= lr * grad` for each
    /// `(key, gradient)` pair. This is the common
    /// "Put(keys, values + optimizer(gradients))" pattern of Figure 3,
    /// executed as one staleness admission (record locks held for the whole
    /// scatter), one cache-invalidation sweep, and one [`KvStore::multi_rmw`].
    /// Duplicate keys apply their gradients cumulatively in input order;
    /// unseen keys are lazily initialised before the gradient lands.
    ///
    /// ```
    /// use mlkv::Mlkv;
    ///
    /// let model = Mlkv::open("grad-doc", 2, 0).unwrap();
    /// model.put(&[1], &[vec![1.0, 1.0]]).unwrap();
    /// model
    ///     .apply_gradients(&[(1, &[0.5, 0.5][..])], 0.2)
    ///     .unwrap();
    /// assert_eq!(model.get_one(1).unwrap(), vec![0.9, 0.9]);
    /// ```
    pub fn apply_gradients(&self, updates: &[(u64, &[f32])], lr: f32) -> StorageResult<()> {
        self.apply_gradients_tagged(updates, lr, &[])
    }

    /// [`EmbeddingTable::apply_gradients`] with opaque `(key, bytes)` *tag
    /// records* written in the **same** storage batch as the gradients.
    ///
    /// Tags are stored verbatim (no dimension check, no decode) and ride the
    /// batch through the engine's WAL group commit, so a tag is durable if
    /// and only if the gradients it accompanies are. The serving layer uses
    /// this to persist idempotency markers atomically with the mutation they
    /// acknowledge: after a crash, a recovered marker proves the whole batch
    /// was applied, and its absence proves none of it was. Tag keys live in
    /// the server's reserved key range and are never gathered, so they are
    /// exempt from staleness admission; duplicate tag keys keep the last
    /// occurrence, like any other duplicate key in a batch.
    pub fn apply_gradients_tagged(
        &self,
        updates: &[(u64, &[f32])],
        lr: f32,
        tags: &[(u64, Vec<u8>)],
    ) -> StorageResult<()> {
        if updates.is_empty() && tags.is_empty() {
            return Ok(());
        }
        for (_, grad) in updates {
            self.check_dim(grad)?;
        }
        let start = Instant::now();
        let grad_keys: Vec<u64> = updates.iter().map(|(k, _)| *k).collect();
        let mut keys = grad_keys.clone();
        keys.extend(tags.iter().map(|(k, _)| *k));
        // Staleness admission covers only the embedding rows; tag records are
        // internal bookkeeping outside the staleness domain.
        let guards = self.controller.acquire_put_batch(&grad_keys)?;
        for key in &keys {
            self.cache.invalidate(*key);
        }
        let dim = self.options.dim;
        let (scale, seed) = (self.options.init_scale, self.options.seed);
        // The rmw callback cannot return an error, so an undecodable stored row
        // is left byte-identical and the failure is surfaced after the batch.
        // A mutex (not a Cell) because the engine may run the callback from
        // several batch-executor workers.
        let decode_failure = Mutex::new(None::<u64>);
        let mut result = self
            .store
            .multi_rmw(&keys, &|i, current| {
                // Positions past the gradient updates are tag records,
                // written verbatim regardless of what was there before.
                if i >= updates.len() {
                    return tags[i - updates.len()].1.clone();
                }
                let mut value = match current {
                    Some(bytes) => match decode_vector(bytes, dim) {
                        Ok(v) => v,
                        Err(_) => {
                            decode_failure
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .get_or_insert(keys[i]);
                            return bytes.to_vec();
                        }
                    },
                    // Absent keys start from the deterministic initialiser,
                    // like the per-key read path.
                    None => {
                        self.stats.record_init();
                        init_vector(keys[i], dim, scale, seed)
                    }
                };
                for (v, g) in value.iter_mut().zip(updates[i].1) {
                    *v -= lr * g;
                }
                encode_vector(&value)
            })
            .map(|_| ());
        if result.is_ok() {
            if let Some(key) = *decode_failure.lock().unwrap_or_else(|e| e.into_inner()) {
                result = Err(StorageError::Corruption(format!(
                    "stored embedding for key {key} does not decode to dimension {dim}; \
                     row left unchanged"
                )));
            }
        }
        drop(guards);
        self.stats
            .record_put(updates.len() as u64, start.elapsed().as_nanos() as u64);
        result
    }

    /// Non-blocking look-ahead prefetch of `keys` into `dest` (paper §III-C2).
    pub fn lookahead(&self, keys: &[u64], dest: LookaheadDest) {
        self.prefetcher.lookahead(keys, dest);
    }

    /// Block until all submitted look-ahead work has completed.
    pub fn wait_for_lookahead(&self) {
        self.prefetcher.wait_idle();
    }

    /// Current staleness of `key`.
    pub fn staleness_of(&self, key: u64) -> u32 {
        self.controller.staleness_of(key)
    }

    /// True when `key` has a stored embedding.
    pub fn contains(&self, key: u64) -> StorageResult<bool> {
        self.store.contains(key)
    }

    /// Number of embeddings stored (approximate for log-structured backends).
    pub fn len(&self) -> usize {
        self.store.approximate_len()
    }

    /// True when no embeddings are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush the backend to its device.
    pub fn flush(&self) -> StorageResult<()> {
        self.store.flush()
    }

    /// Table-level operation statistics.
    pub fn stats(&self) -> TableStatsSnapshot {
        self.stats.snapshot()
    }

    /// Staleness-control statistics (stall time, blocked Gets).
    pub fn staleness_stats(&self) -> StalenessStats {
        self.controller.stats()
    }

    /// Prefetcher statistics.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetcher.stats()
    }

    /// Backend I/O metrics.
    pub fn store_metrics(&self) -> mlkv_storage::MetricsSnapshot {
        self.store.metrics().snapshot()
    }

    fn check_dim(&self, value: &[f32]) -> StorageResult<()> {
        if value.len() != self.options.dim {
            return Err(StorageError::InvalidArgument(format!(
                "vector of dimension {} does not match table dimension {}",
                value.len(),
                self.options.dim
            )));
        }
        Ok(())
    }

    /// Read the embedding through cache → store, lazily initialising it.
    fn read_or_init(&self, key: u64) -> StorageResult<Vec<f32>> {
        if let Some(bytes) = self.cache.get(key) {
            self.stats.record_cache_hit();
            return decode_vector(&bytes, self.options.dim);
        }
        match self.store.get(key) {
            Ok(bytes) => decode_vector(&bytes, self.options.dim),
            Err(e) if e.is_not_found() => {
                let fresh = init_vector(
                    key,
                    self.options.dim,
                    self.options.init_scale,
                    self.options.seed,
                );
                self.store.put(key, &encode_vector(&fresh))?;
                self.stats.record_init();
                Ok(fresh)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{open_store, BackendKind};
    use mlkv_storage::StoreConfig;

    fn table(bound: u32) -> EmbeddingTable {
        let store = open_store(
            BackendKind::Mlkv,
            StoreConfig::in_memory()
                .with_memory_budget(1 << 20)
                .with_page_size(4096),
        )
        .unwrap();
        EmbeddingTable::builder(store)
            .dim(8)
            .staleness_bound(bound)
            .build()
            .unwrap()
    }

    #[test]
    fn get_initialises_unseen_keys_deterministically() {
        let t = table(u32::MAX);
        let a = t.get_one(5).unwrap();
        let b = t.get_one(5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert_eq!(t.stats().initialised, 1);
        assert!(t.contains(5).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn tagged_gradients_write_tags_in_the_same_batch() {
        let t = table(u32::MAX);
        t.put_one(1, &[1.0; 8]).unwrap();
        let marker_key = 0xFFFF_FFFF_0000_0007u64;
        t.apply_gradients_tagged(
            &[(1, &[0.5; 8][..])],
            0.2,
            &[(marker_key, vec![0xAB, 0xCD])],
        )
        .unwrap();
        assert_eq!(t.get_one(1).unwrap(), vec![0.9; 8]);
        // The tag is an ordinary store record, byte-verbatim, outside the
        // embedding encoding.
        let got = t.store().multi_get(&[marker_key]);
        assert_eq!(got[0].as_ref().unwrap(), &vec![0xAB, 0xCD]);
        // Re-tagging the same slot keeps the last write.
        t.apply_gradients_tagged(&[], 0.0, &[(marker_key, vec![0x01])])
            .unwrap();
        let got = t.store().multi_get(&[marker_key]);
        assert_eq!(got[0].as_ref().unwrap(), &vec![0x01]);
    }

    #[test]
    fn put_then_get_roundtrip() {
        let t = table(u32::MAX);
        let v: Vec<f32> = (0..8).map(|i| i as f32 / 10.0).collect();
        t.put_one(3, &v).unwrap();
        assert_eq!(t.get_one(3).unwrap(), v);
        // Batch APIs.
        let keys = vec![10, 11, 12];
        let vals: Vec<Vec<f32>> = (0..3).map(|i| vec![i as f32; 8]).collect();
        t.put(&keys, &vals).unwrap();
        assert_eq!(t.get(&keys).unwrap(), vals);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let t = table(u32::MAX);
        assert!(t.put_one(1, &[0.0; 4]).is_err());
        assert!(t.put(&[1, 2], &[vec![0.0; 8]]).is_err());
        assert!(t.apply_gradients(&[(1, &[0.0; 3][..])], 0.1).is_err());
        assert!(EmbeddingTable::builder(
            open_store(BackendKind::InMemory, StoreConfig::in_memory()).unwrap()
        )
        .dim(0)
        .build()
        .is_err());
    }

    #[test]
    fn apply_gradients_performs_sgd_step() {
        let t = table(u32::MAX);
        t.put_one(1, &[1.0; 8]).unwrap();
        t.apply_gradients(&[(1, &[0.5; 8][..])], 0.2).unwrap();
        let v = t.get_one(1).unwrap();
        for x in v {
            assert!((x - 0.9).abs() < 1e-6);
        }
    }

    #[test]
    fn gather_matches_per_key_gets_and_fans_out_duplicates() {
        let t = table(u32::MAX);
        for k in 0..10u64 {
            t.put_one(k, &[k as f32; 8]).unwrap();
        }
        let keys = vec![3, 900, 3, 0, 901];
        let gathered = t.gather(&keys).unwrap();
        // 900/901 are lazily initialised exactly like a per-key get would.
        let reference: Vec<Vec<f32>> = keys.iter().map(|k| t.get_one(*k).unwrap()).collect();
        assert_eq!(gathered, reference);
        assert_eq!(gathered[0], gathered[2]);
        assert_eq!(t.stats().initialised, 2);
    }

    #[test]
    fn apply_gradients_accumulates_duplicate_keys_in_order() {
        let t = table(u32::MAX);
        t.put_one(1, &[1.0; 8]).unwrap();
        let g = vec![1.0f32; 8];
        t.apply_gradients(&[(1, g.as_slice()), (1, g.as_slice())], 0.25)
            .unwrap();
        assert_eq!(t.get_one(1).unwrap(), vec![0.5; 8]);
    }

    #[test]
    fn apply_gradients_initialises_unseen_keys() {
        let t = table(u32::MAX);
        t.apply_gradients(&[(77, &[0.0; 8][..])], 0.1).unwrap();
        // A zero gradient on an unseen key must land exactly on the
        // deterministic initialisation the read path would produce.
        let via_gather = {
            let fresh = table(u32::MAX);
            fresh.get_one(77).unwrap()
        };
        assert_eq!(t.get_one(77).unwrap(), via_gather);
        assert_eq!(t.stats().initialised, 1);
    }

    #[test]
    fn concurrent_gather_and_gradients_on_unseen_keys_lose_no_updates() {
        // Regression test: gather's lazy initialisation must not clobber a
        // concurrent gradient landing on the same unseen key. Whichever order
        // the two operations run in, the final value is init - lr * grad.
        let t = Arc::new(table(u32::MAX));
        let keys: Vec<u64> = (0..200).collect();
        let gatherer = {
            let t = Arc::clone(&t);
            let keys = keys.clone();
            std::thread::spawn(move || t.gather(&keys).unwrap())
        };
        let updater = {
            let t = Arc::clone(&t);
            let keys = keys.clone();
            std::thread::spawn(move || {
                let grad = [1.0f32; 8];
                for k in keys {
                    t.apply_gradients(&[(k, grad.as_slice())], 0.5).unwrap();
                }
            })
        };
        gatherer.join().unwrap();
        updater.join().unwrap();
        let reference = table(u32::MAX);
        for k in keys {
            let init = reference.get_one(k).unwrap();
            let expected: Vec<f32> = init.iter().map(|x| x - 0.5).collect();
            assert_eq!(t.get_one(k).unwrap(), expected, "key {k} lost its update");
        }
    }

    #[test]
    fn staleness_bound_is_enforced_per_key() {
        let t = table(2);
        // Three gets allowed (staleness reaches 3 > bound on the 4th attempt).
        t.get_one(7).unwrap();
        t.get_one(7).unwrap();
        t.get_one(7).unwrap();
        assert_eq!(t.staleness_of(7), 3);
        // A put brings staleness back under the bound.
        t.put_one(7, &[0.0; 8]).unwrap();
        assert_eq!(t.staleness_of(7), 2);
        t.get_one(7).unwrap();
        assert!(t.staleness_stats().gets >= 4);
    }

    #[test]
    fn bsp_interleaves_get_put_without_blocking() {
        let t = table(0);
        for _ in 0..20 {
            let v = t.get_one(1).unwrap();
            t.put_one(1, &v).unwrap();
        }
        assert_eq!(t.staleness_of(1), 0);
        assert_eq!(t.staleness_stats().blocked_gets, 0);
    }

    #[test]
    fn lookahead_into_application_cache_hits_on_next_get() {
        let t = table(u32::MAX);
        for k in 0..50u64 {
            t.put_one(k, &[k as f32; 8]).unwrap();
        }
        t.lookahead(
            &(0..50u64).collect::<Vec<_>>(),
            LookaheadDest::ApplicationCache,
        );
        t.wait_for_lookahead();
        let before = t.stats().cache_hits;
        let v = t.get_one(7).unwrap();
        assert_eq!(v, vec![7.0; 8]);
        assert_eq!(t.stats().cache_hits, before + 1);
        assert_eq!(t.prefetch_stats().cached, 50);
    }

    #[test]
    fn lookahead_into_storage_buffer_promotes_cold_records() {
        let store = open_store(
            BackendKind::Mlkv,
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(1 << 10),
        )
        .unwrap();
        let t = EmbeddingTable::builder(store)
            .dim(8)
            .staleness_bound(u32::MAX)
            .build()
            .unwrap();
        for k in 0..2000u64 {
            t.put_one(k, &[k as f32; 8]).unwrap();
        }
        t.lookahead(
            &(0..32u64).collect::<Vec<_>>(),
            LookaheadDest::StorageBuffer,
        );
        t.wait_for_lookahead();
        assert!(t.prefetch_stats().promoted > 0);
        assert!(t.store_metrics().prefetch_copies > 0);
        // Values survive promotion.
        assert_eq!(t.get_one(0).unwrap(), vec![0.0; 8]);
    }

    #[test]
    fn cache_never_serves_stale_values_after_put() {
        let t = table(u32::MAX);
        t.put_one(9, &[1.0; 8]).unwrap();
        t.lookahead(&[9], LookaheadDest::ApplicationCache);
        t.wait_for_lookahead();
        t.put_one(9, &[2.0; 8]).unwrap();
        assert_eq!(t.get_one(9).unwrap(), vec![2.0; 8]);
    }

    #[test]
    fn rmw_one_initialises_and_modifies() {
        let t = table(u32::MAX);
        let out = t
            .rmw_one(77, |v| {
                for x in v.iter_mut() {
                    *x = 1.5;
                }
            })
            .unwrap();
        assert_eq!(out, vec![1.5; 8]);
        assert_eq!(t.get_one(77).unwrap(), vec![1.5; 8]);
    }

    #[test]
    fn works_over_every_backend() {
        for kind in BackendKind::ALL {
            let store = open_store(
                kind,
                StoreConfig::in_memory()
                    .with_memory_budget(1 << 20)
                    .with_page_size(4096),
            )
            .unwrap();
            let t = EmbeddingTable::builder(store)
                .dim(4)
                .staleness_bound(4)
                .build()
                .unwrap();
            t.put_one(1, &[0.25; 4]).unwrap();
            assert_eq!(t.get_one(1).unwrap(), vec![0.25; 4], "{}", kind.name());
            t.apply_gradients(&[(1, &[1.0; 4][..])], 0.25).unwrap();
            assert_eq!(t.get_one(1).unwrap(), vec![0.0; 4], "{}", kind.name());
        }
    }

    #[test]
    fn concurrent_trainers_with_ssp_make_progress() {
        let store = open_store(
            BackendKind::Mlkv,
            StoreConfig::in_memory()
                .with_memory_budget(1 << 20)
                .with_page_size(4096),
        )
        .unwrap();
        let t = Arc::new(
            EmbeddingTable::builder(store)
                .dim(8)
                .staleness_bound(8)
                .build()
                .unwrap(),
        );
        let mut handles = Vec::new();
        for worker in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let key = (worker * 50 + i) % 100;
                    let v = t.get_one(key).unwrap();
                    t.apply_gradients(&[(key, &[0.01; 8][..])], 0.1).unwrap();
                    assert_eq!(v.len(), 8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every key's Gets were matched by Puts, so staleness returns to zero.
        for key in 0..100u64 {
            assert_eq!(t.staleness_of(key), 0, "key {key}");
        }
    }
}
