//! Look-ahead prefetching (paper §III-C2, Figure 5(b)).
//!
//! The non-blocking `Lookahead(keys, dest)` interface hands batches of keys that
//! will be needed in *future* iterations to a pool of background workers. Each
//! worker either
//!
//! * copies the record from the on-disk region into the storage engine's mutable
//!   memory buffer (`LookaheadDest::StorageBuffer`, via
//!   [`KvStore::promote_to_memory`]) — this is what distinguishes look-ahead
//!   prefetching from conventional prefetching: it works *beyond* the staleness
//!   bound because it never reads the value into the application, so it cannot
//!   violate bounded staleness; or
//! * loads the value into the application-side cache
//!   (`LookaheadDest::ApplicationCache`), which is conventional prefetching and
//!   therefore only useful within the staleness window.
//!
//! Records already resident in the immutable in-memory region are *not* copied
//! (that would only create extra pages to flush), mirroring the paper.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use mlkv_storage::{KvStore, ShardedLruCache};

/// Where prefetched embeddings should be materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookaheadDest {
    /// Copy cold records into the storage engine's mutable memory buffer.
    StorageBuffer,
    /// Load values into the application cache.
    ApplicationCache,
}

/// One prefetch request.
#[derive(Debug, Clone)]
struct Request {
    keys: Vec<u64>,
    dest: LookaheadDest,
}

/// Counters describing prefetcher activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Keys submitted via `lookahead`.
    pub submitted: u64,
    /// Keys fully processed by a worker.
    pub completed: u64,
    /// Keys that resulted in a copy into the storage buffer.
    pub promoted: u64,
    /// Keys loaded into the application cache.
    pub cached: u64,
    /// Keys that were already hot / missing and needed no work.
    pub skipped: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    promoted: AtomicU64,
    cached: AtomicU64,
    skipped: AtomicU64,
}

/// Background look-ahead prefetcher.
pub struct Prefetcher {
    sender: Option<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl Prefetcher {
    /// Spawn `num_workers` background workers serving look-ahead requests for
    /// `store`, filling `app_cache` for application-cache destinations.
    pub fn new(
        store: Arc<dyn KvStore>,
        app_cache: Arc<ShardedLruCache>,
        num_workers: usize,
    ) -> Self {
        let (sender, receiver): (Sender<Request>, Receiver<Request>) = unbounded();
        let counters = Arc::new(Counters::default());
        let workers = (0..num_workers.max(1))
            .map(|_| {
                let receiver = receiver.clone();
                let store = Arc::clone(&store);
                let cache = Arc::clone(&app_cache);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    while let Ok(req) = receiver.recv() {
                        match req.dest {
                            LookaheadDest::StorageBuffer => {
                                // One batched promote per request: the engine
                                // pays its epoch enter/exit once and copies
                                // cold records in log-address order.
                                let total = req.keys.len() as u64;
                                let promoted = match store.multi_promote(&req.keys) {
                                    Ok(n) => n as u64,
                                    // I/O failure mid-promote: the batch is a
                                    // hint, so count it as skipped and move on.
                                    Err(_) => 0,
                                };
                                counters.promoted.fetch_add(promoted, Ordering::Relaxed);
                                counters
                                    .skipped
                                    .fetch_add(total - promoted, Ordering::Relaxed);
                                counters.completed.fetch_add(total, Ordering::Relaxed);
                            }
                            LookaheadDest::ApplicationCache => {
                                // One batched storage read per request instead
                                // of a point read per key.
                                let values = store.multi_get(&req.keys);
                                for (key, value) in req.keys.into_iter().zip(values) {
                                    match value {
                                        Ok(value) => {
                                            cache.insert(key, value);
                                            counters.cached.fetch_add(1, Ordering::Relaxed);
                                        }
                                        Err(_) => {
                                            counters.skipped.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                    counters.completed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            counters,
        }
    }

    /// Submit keys for asynchronous prefetching. Never blocks.
    ///
    /// Keys are deduplicated before queueing: trainers announce raw
    /// per-sample key streams (Zipf-skewed batches repeat hot keys many
    /// times), and a duplicate can never be separately useful — it would
    /// both waste a probe and, counted as "skipped", poison the
    /// [`PrefetchStats`] hit-rate that the trainers' `AdaptiveLookahead`
    /// steers the look-ahead depth with. All counters are therefore per
    /// *unique* key.
    pub fn lookahead(&self, keys: &[u64], dest: LookaheadDest) {
        if keys.is_empty() {
            return;
        }
        let mut unique = keys.to_vec();
        unique.sort_unstable();
        unique.dedup();
        self.counters
            .submitted
            .fetch_add(unique.len() as u64, Ordering::Relaxed);
        if let Some(sender) = &self.sender {
            // The channel is unbounded; send only fails after shutdown.
            let _ = sender.send(Request { keys: unique, dest });
        }
    }

    /// Block until every submitted key has been processed (used by tests and by
    /// benchmark phases that want a clean cut between warm-up and measurement).
    pub fn wait_idle(&self) {
        while self.counters.completed.load(Ordering::Acquire)
            < self.counters.submitted.load(Ordering::Acquire)
        {
            std::thread::yield_now();
        }
    }

    /// Current prefetch statistics.
    pub fn stats(&self) -> PrefetchStats {
        PrefetchStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            promoted: self.counters.promoted.load(Ordering::Relaxed),
            cached: self.counters.cached.load(Ordering::Relaxed),
            skipped: self.counters.skipped.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Close the channel so workers drain outstanding requests and exit.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_faster::FasterKv;
    use mlkv_storage::{MemStore, StoreConfig};

    fn cold_store() -> Arc<dyn KvStore> {
        // A tiny memory window guarantees that early keys spill to "disk".
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(1 << 10),
        )
        .unwrap();
        for k in 0..2000u64 {
            store.put(k, &[k as u8; 64]).unwrap();
        }
        Arc::new(store)
    }

    #[test]
    fn storage_buffer_prefetch_promotes_cold_records() {
        let store = cold_store();
        let cache = Arc::new(ShardedLruCache::new(1 << 20, 4));
        let prefetcher = Prefetcher::new(Arc::clone(&store), cache, 2);
        let keys: Vec<u64> = (0..64).collect();
        prefetcher.lookahead(&keys, LookaheadDest::StorageBuffer);
        prefetcher.wait_idle();
        let stats = prefetcher.stats();
        assert_eq!(stats.completed, 64);
        assert!(stats.promoted > 0, "cold keys should be promoted");
        // After promotion the keys are served from memory.
        let r = store.get_traced(0).unwrap();
        assert_ne!(r.source, mlkv_storage::kv::ReadSource::Disk);
    }

    #[test]
    fn application_cache_prefetch_fills_cache() {
        let store: Arc<dyn KvStore> = Arc::new(MemStore::new());
        for k in 0..100u64 {
            store.put(k, &[k as u8; 16]).unwrap();
        }
        let cache = Arc::new(ShardedLruCache::new(1 << 20, 4));
        let prefetcher = Prefetcher::new(Arc::clone(&store), Arc::clone(&cache), 1);
        prefetcher.lookahead(
            &(0..50u64).collect::<Vec<_>>(),
            LookaheadDest::ApplicationCache,
        );
        prefetcher.wait_idle();
        assert_eq!(prefetcher.stats().cached, 50);
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.get(7), Some(vec![7u8; 16]));
    }

    #[test]
    fn missing_keys_are_counted_as_skipped() {
        let store: Arc<dyn KvStore> = Arc::new(MemStore::new());
        let cache = Arc::new(ShardedLruCache::new(1 << 20, 4));
        let prefetcher = Prefetcher::new(store, cache, 1);
        prefetcher.lookahead(&[1, 2, 3], LookaheadDest::ApplicationCache);
        prefetcher.wait_idle();
        let stats = prefetcher.stats();
        assert_eq!(stats.skipped, 3);
        assert_eq!(stats.cached, 0);
    }

    #[test]
    fn duplicate_keys_are_announced_once() {
        let store: Arc<dyn KvStore> = Arc::new(MemStore::new());
        store.put(1, &[1u8; 8]).unwrap();
        let cache = Arc::new(ShardedLruCache::new(1 << 20, 4));
        let prefetcher = Prefetcher::new(store, Arc::clone(&cache), 1);
        prefetcher.lookahead(&[1, 1, 1, 2, 2], LookaheadDest::ApplicationCache);
        prefetcher.wait_idle();
        let stats = prefetcher.stats();
        assert_eq!(stats.submitted, 2, "duplicates must collapse");
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cached, 1);
        assert_eq!(stats.skipped, 1);
    }

    #[test]
    fn empty_request_is_a_noop() {
        let store: Arc<dyn KvStore> = Arc::new(MemStore::new());
        let cache = Arc::new(ShardedLruCache::new(1 << 20, 4));
        let prefetcher = Prefetcher::new(store, cache, 1);
        prefetcher.lookahead(&[], LookaheadDest::StorageBuffer);
        prefetcher.wait_idle();
        assert_eq!(prefetcher.stats(), PrefetchStats::default());
    }

    #[test]
    fn drop_drains_outstanding_requests() {
        let store: Arc<dyn KvStore> = Arc::new(MemStore::new());
        for k in 0..100u64 {
            store.put(k, &[1u8; 8]).unwrap();
        }
        let cache = Arc::new(ShardedLruCache::new(1 << 20, 4));
        let prefetcher = Prefetcher::new(store, Arc::clone(&cache), 2);
        prefetcher.lookahead(
            &(0..100u64).collect::<Vec<_>>(),
            LookaheadDest::ApplicationCache,
        );
        drop(prefetcher);
        // All requests must have been processed before drop returned.
        assert_eq!(cache.len(), 100);
    }
}
