//! The MLKV record word: a latch-free vector clock packed into the 64-bit
//! record-level lock word (paper Figure 5(a)).
//!
//! ```text
//!  bit 63    bit 62    bits 32..61      bits 0..31
//! +--------+---------+---------------+--------------+
//! | Locked | Replaced| Generation(30)| Staleness(32)|
//! +--------+---------+---------------+--------------+
//! ```
//!
//! * **Locked** — record-level latch bit; acquired by both Get and Put for the
//!   duration of the actual read/update.
//! * **Replaced** — set when the record's memory address has been replaced by
//!   another thread (e.g. an RCU append or a look-ahead promotion); readers that
//!   observe it retry through the index.
//! * **Generation** — 30-bit version counter bumped on every completed update so
//!   that the latest value is always returned.
//! * **Staleness** — 32-bit counter of reads whose matching update has not yet
//!   been applied. A Get must wait until `staleness <= bound` before acquiring
//!   the lock (and then increments it); a Put never waits (it only decreases
//!   staleness).

use std::sync::atomic::{AtomicU64, Ordering};

const STALENESS_BITS: u32 = 32;
const GENERATION_BITS: u32 = 30;
const STALENESS_MASK: u64 = (1 << STALENESS_BITS) - 1;
const GENERATION_MASK: u64 = (1 << GENERATION_BITS) - 1;
const GENERATION_SHIFT: u32 = STALENESS_BITS;
const REPLACED_SHIFT: u32 = 62;
const LOCKED_SHIFT: u32 = 63;

/// A decoded record word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecordWord {
    /// Record-level latch.
    pub locked: bool,
    /// The record's memory address has been replaced.
    pub replaced: bool,
    /// 30-bit version counter.
    pub generation: u32,
    /// 32-bit staleness counter.
    pub staleness: u32,
}

impl RecordWord {
    /// Pack into the 64-bit representation.
    pub fn pack(&self) -> u64 {
        ((self.locked as u64) << LOCKED_SHIFT)
            | ((self.replaced as u64) << REPLACED_SHIFT)
            | (((self.generation as u64) & GENERATION_MASK) << GENERATION_SHIFT)
            | ((self.staleness as u64) & STALENESS_MASK)
    }

    /// Unpack from the 64-bit representation.
    pub fn unpack(word: u64) -> Self {
        Self {
            locked: (word >> LOCKED_SHIFT) & 1 == 1,
            replaced: (word >> REPLACED_SHIFT) & 1 == 1,
            generation: ((word >> GENERATION_SHIFT) & GENERATION_MASK) as u32,
            staleness: (word & STALENESS_MASK) as u32,
        }
    }
}

/// Outcome of one lock-acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The lock was acquired (the CAS succeeded).
    Acquired,
    /// The record is currently locked by another thread; retry.
    Contended,
    /// The staleness bound blocks this Get; wait until a Put lands.
    StalenessBlocked,
}

/// The atomic record word with the paper's Get/Put acquisition protocol.
#[derive(Debug, Default)]
pub struct AtomicRecordWord {
    word: AtomicU64,
}

impl AtomicRecordWord {
    /// A fresh word: unlocked, generation 0, staleness 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current decoded value.
    pub fn load(&self) -> RecordWord {
        RecordWord::unpack(self.word.load(Ordering::Acquire))
    }

    /// Attempt the Get-side acquisition: requires `staleness <= bound`, the
    /// record unlocked and not replaced; on success sets Locked and increments
    /// staleness in a single compare-and-swap.
    pub fn try_acquire_get(&self, bound: u32) -> AcquireOutcome {
        let observed = self.word.load(Ordering::Acquire);
        let cur = RecordWord::unpack(observed);
        if cur.locked {
            return AcquireOutcome::Contended;
        }
        if cur.staleness > bound {
            return AcquireOutcome::StalenessBlocked;
        }
        let desired = RecordWord {
            locked: true,
            replaced: cur.replaced,
            generation: cur.generation,
            staleness: cur.staleness.saturating_add(1),
        };
        match self.word.compare_exchange(
            observed,
            desired.pack(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => AcquireOutcome::Acquired,
            Err(_) => AcquireOutcome::Contended,
        }
    }

    /// Attempt the Put-side acquisition: skips the staleness check entirely (a
    /// Put only reduces staleness); on success sets Locked and decrements
    /// staleness in a single compare-and-swap.
    pub fn try_acquire_put(&self) -> AcquireOutcome {
        let observed = self.word.load(Ordering::Acquire);
        let cur = RecordWord::unpack(observed);
        if cur.locked {
            return AcquireOutcome::Contended;
        }
        let desired = RecordWord {
            locked: true,
            replaced: cur.replaced,
            generation: cur.generation,
            staleness: cur.staleness.saturating_sub(1),
        };
        match self.word.compare_exchange(
            observed,
            desired.pack(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => AcquireOutcome::Acquired,
            Err(_) => AcquireOutcome::Contended,
        }
    }

    /// Attempt a staleness-neutral latch acquisition: sets Locked without
    /// touching the staleness counter. Used for maintenance writes that are
    /// neither a Get nor a Put in the consistency protocol — e.g. materialising
    /// a lazily-initialised record — so they exclude concurrent operations on
    /// the record without perturbing its vector clock.
    pub fn try_acquire_latch(&self) -> AcquireOutcome {
        let observed = self.word.load(Ordering::Acquire);
        let cur = RecordWord::unpack(observed);
        if cur.locked {
            return AcquireOutcome::Contended;
        }
        let desired = RecordWord {
            locked: true,
            ..cur
        };
        match self.word.compare_exchange(
            observed,
            desired.pack(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => AcquireOutcome::Acquired,
            Err(_) => AcquireOutcome::Contended,
        }
    }

    /// Release the lock after a completed operation: clears Locked, bumps the
    /// generation (wrapping within its 30 bits) and optionally sets Replaced
    /// when the operation relocated the record.
    pub fn release(&self, mark_replaced: bool) {
        loop {
            let observed = self.word.load(Ordering::Acquire);
            let mut cur = RecordWord::unpack(observed);
            cur.locked = false;
            cur.replaced = cur.replaced || mark_replaced;
            cur.generation = (cur.generation + 1) & (GENERATION_MASK as u32);
            if self
                .word
                .compare_exchange(observed, cur.pack(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Clear the Replaced bit (done after the index has been re-read and the
    /// fresh record located).
    pub fn clear_replaced(&self) {
        loop {
            let observed = self.word.load(Ordering::Acquire);
            let mut cur = RecordWord::unpack(observed);
            if !cur.replaced {
                return;
            }
            cur.replaced = false;
            if self
                .word
                .compare_exchange(observed, cur.pack(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Current staleness (number of outstanding reads).
    pub fn staleness(&self) -> u32 {
        self.load().staleness
    }

    /// Current generation.
    pub fn generation(&self) -> u32 {
        self.load().generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pack_unpack_roundtrip() {
        let cases = [
            RecordWord::default(),
            RecordWord {
                locked: true,
                replaced: false,
                generation: 0,
                staleness: 0,
            },
            RecordWord {
                locked: false,
                replaced: true,
                generation: (1 << 30) - 1,
                staleness: u32::MAX,
            },
            RecordWord {
                locked: true,
                replaced: true,
                generation: 12345,
                staleness: 678,
            },
        ];
        for case in cases {
            assert_eq!(RecordWord::unpack(case.pack()), case);
        }
    }

    #[test]
    fn bit_layout_matches_figure_5a() {
        let w = RecordWord {
            locked: true,
            replaced: false,
            generation: 1,
            staleness: 1,
        }
        .pack();
        assert_eq!(w, (1 << 63) | (1 << 32) | 1);
    }

    #[test]
    fn get_increments_staleness_and_put_decrements() {
        let word = AtomicRecordWord::new();
        assert_eq!(word.try_acquire_get(4), AcquireOutcome::Acquired);
        word.release(false);
        assert_eq!(word.staleness(), 1);
        assert_eq!(word.try_acquire_put(), AcquireOutcome::Acquired);
        word.release(false);
        assert_eq!(word.staleness(), 0);
        assert_eq!(word.generation(), 2);
    }

    #[test]
    fn staleness_bound_blocks_gets() {
        let word = AtomicRecordWord::new();
        // Bound 1: two outstanding Gets are allowed (staleness 0 and 1), a third must wait.
        assert_eq!(word.try_acquire_get(1), AcquireOutcome::Acquired);
        word.release(false);
        assert_eq!(word.try_acquire_get(1), AcquireOutcome::Acquired);
        word.release(false);
        assert_eq!(word.try_acquire_get(1), AcquireOutcome::StalenessBlocked);
        // A Put unblocks it.
        assert_eq!(word.try_acquire_put(), AcquireOutcome::Acquired);
        word.release(false);
        assert_eq!(word.try_acquire_get(1), AcquireOutcome::Acquired);
    }

    #[test]
    fn bound_zero_is_bsp() {
        let word = AtomicRecordWord::new();
        assert_eq!(word.try_acquire_get(0), AcquireOutcome::Acquired);
        word.release(false);
        assert_eq!(word.try_acquire_get(0), AcquireOutcome::StalenessBlocked);
        assert_eq!(word.try_acquire_put(), AcquireOutcome::Acquired);
        word.release(false);
        assert_eq!(word.try_acquire_get(0), AcquireOutcome::Acquired);
    }

    #[test]
    fn latch_excludes_other_operations_without_touching_staleness() {
        let word = AtomicRecordWord::new();
        word.try_acquire_get(4);
        word.release(false);
        assert_eq!(word.staleness(), 1);
        assert_eq!(word.try_acquire_latch(), AcquireOutcome::Acquired);
        assert_eq!(word.try_acquire_put(), AcquireOutcome::Contended);
        assert_eq!(word.try_acquire_get(4), AcquireOutcome::Contended);
        assert_eq!(word.try_acquire_latch(), AcquireOutcome::Contended);
        word.release(false);
        assert_eq!(word.staleness(), 1, "latch must not change staleness");
    }

    #[test]
    fn locked_record_causes_contention() {
        let word = AtomicRecordWord::new();
        assert_eq!(word.try_acquire_get(10), AcquireOutcome::Acquired);
        assert_eq!(word.try_acquire_get(10), AcquireOutcome::Contended);
        assert_eq!(word.try_acquire_put(), AcquireOutcome::Contended);
        word.release(false);
        assert_eq!(word.try_acquire_put(), AcquireOutcome::Acquired);
    }

    #[test]
    fn put_never_underflows_staleness() {
        let word = AtomicRecordWord::new();
        for _ in 0..3 {
            assert_eq!(word.try_acquire_put(), AcquireOutcome::Acquired);
            word.release(false);
        }
        assert_eq!(word.staleness(), 0);
    }

    #[test]
    fn replaced_bit_set_and_cleared() {
        let word = AtomicRecordWord::new();
        word.try_acquire_put();
        word.release(true);
        assert!(word.load().replaced);
        word.clear_replaced();
        assert!(!word.load().replaced);
        // Clearing when already clear is a no-op.
        word.clear_replaced();
        assert!(!word.load().replaced);
    }

    #[test]
    fn generation_wraps_within_30_bits() {
        let word = AtomicRecordWord::new();
        // Fake a generation at the 30-bit maximum, then release once more.
        word.word.store(
            RecordWord {
                locked: true,
                replaced: false,
                generation: (1 << 30) - 1,
                staleness: 5,
            }
            .pack(),
            Ordering::SeqCst,
        );
        word.release(false);
        let cur = word.load();
        assert_eq!(cur.generation, 0);
        assert_eq!(cur.staleness, 5, "staleness untouched by release");
    }

    #[test]
    fn concurrent_gets_and_puts_balance_staleness() {
        let word = Arc::new(AtomicRecordWord::new());
        let mut handles = Vec::new();
        // 4 threads each performing 100 matched Get+Put pairs with a generous bound.
        for _ in 0..4 {
            let word = Arc::clone(&word);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    loop {
                        if word.try_acquire_get(u32::MAX) == AcquireOutcome::Acquired {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    word.release(false);
                    loop {
                        if word.try_acquire_put() == AcquireOutcome::Acquired {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    word.release(false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_word = word.load();
        assert_eq!(final_word.staleness, 0);
        assert!(!final_word.locked);
        assert_eq!(final_word.generation, 800 & ((1 << 30) - 1));
    }
}
