//! A disk-paged B+tree key-value store with a buffer pool, standing in for
//! WiredTiger in the paper's offloading baselines.
//!
//! Structure:
//!
//! * Leaf pages hold sorted `(key, value)` entries and are the unit of disk I/O.
//! * The internal level is kept in memory as a sorted separator map
//!   (`max key in leaf -> leaf page id`), mirroring how WiredTiger keeps internal
//!   pages memory-resident in practice.
//! * A buffer pool caches leaf pages up to the configured memory budget and
//!   evicts least-recently-used pages, writing them back when dirty.
//!
//! Like the LSM engine, this store deliberately lacks a record-promotion
//! primitive: reads of cold leaves always pay a page-sized disk read, which is
//! the behaviour the paper's Figure 7 attributes to the WiredTiger baselines.

pub mod buffer_pool;
pub mod node;
pub mod store;

pub use buffer_pool::BufferPool;
pub use node::LeafPage;
pub use store::BtreeStore;
