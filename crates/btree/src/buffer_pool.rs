//! Buffer pool for B+tree leaf pages.
//!
//! Caches decoded leaf pages up to a page-count capacity derived from the
//! memory budget. Eviction is LRU; dirty pages are encoded and written back to
//! the device at `page_id * page_size` before being dropped.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use mlkv_storage::{
    Device, IoPlanner, PendingRead, ReadReq, StorageError, StorageMetrics, StorageResult,
};

use crate::node::LeafPage;

struct CachedPage {
    leaf: LeafPage,
    dirty: bool,
    stamp: u64,
}

/// LRU buffer pool of leaf pages, sharded by page-id hash so warm hits on
/// different pages never contend on one mutex.
pub struct BufferPool {
    device: Arc<dyn Device>,
    page_size: usize,
    planner: IoPlanner,
    metrics: Arc<StorageMetrics>,
    /// One independently locked shard per hash bucket. Each shard runs its own
    /// LRU clock over its own slice of the capacity, so eviction pressure in
    /// one shard never touches pages cached in another.
    shards: Vec<Mutex<PoolShard>>,
}

struct PoolShard {
    pages: HashMap<u64, CachedPage>,
    clock: u64,
    capacity: usize,
}

impl BufferPool {
    /// Create a pool over `device` holding at most `capacity_pages` pages of
    /// `page_size` bytes each, split over `shards` hash shards. The shard
    /// count is clamped so every shard keeps at least two page slots (tiny
    /// pools degrade to one shard, preserving exact global-LRU eviction
    /// order); the per-shard capacities always sum to `capacity_pages`.
    pub fn new(
        device: Arc<dyn Device>,
        capacity_pages: usize,
        page_size: usize,
        shards: usize,
        planner: IoPlanner,
        metrics: Arc<StorageMetrics>,
    ) -> Self {
        let capacity_pages = capacity_pages.max(2);
        let shard_count = shards.max(1).min(capacity_pages / 2).max(1);
        let base = capacity_pages / shard_count;
        let extra = capacity_pages % shard_count;
        Self {
            device,
            page_size,
            planner,
            metrics,
            shards: (0..shard_count)
                .map(|i| {
                    Mutex::new(PoolShard {
                        pages: HashMap::new(),
                        clock: 0,
                        capacity: base + usize::from(i < extra),
                    })
                })
                .collect(),
        }
    }

    /// Page size used for on-disk leaves.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of hash shards the pool is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard caching `page_id`.
    fn shard_of(&self, page_id: u64) -> usize {
        let h = page_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h as usize) % self.shards.len()
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pages.len()).sum()
    }

    /// Run `f` with read access to the leaf `page_id`, faulting it in from the
    /// device if necessary. Returns whether the page had to be read from disk.
    ///
    /// The fault-in device read happens *outside* the pool lock, so concurrent
    /// readers (the batch executor's leaf-group workers) overlap their cold
    /// reads instead of queueing on the pool mutex. Two racing faults of the
    /// same page both read the device; the first to re-acquire the lock
    /// installs the page and the other discards its copy.
    pub fn with_leaf<R>(
        &self,
        page_id: u64,
        f: impl FnOnce(&LeafPage) -> R,
    ) -> StorageResult<(R, bool)> {
        let mut from_disk = false;
        let mut faulted: Option<LeafPage> = None;
        loop {
            {
                let mut shard = self.shards[self.shard_of(page_id)].lock();
                if let Some(leaf) = faulted.take() {
                    shard.clock += 1;
                    let stamp = shard.clock;
                    shard.pages.entry(page_id).or_insert(CachedPage {
                        leaf,
                        dirty: false,
                        stamp,
                    });
                    self.evict_if_needed(&mut shard)?;
                }
                if shard.pages.contains_key(&page_id) {
                    shard.clock += 1;
                    let stamp = shard.clock;
                    let page = shard.pages.get_mut(&page_id).expect("resident");
                    page.stamp = stamp;
                    let out = f(&page.leaf);
                    return Ok((out, from_disk));
                }
            }
            faulted = Some(self.read_leaf(page_id)?);
            from_disk = true;
        }
    }

    /// Run `f` with mutable access to the leaf `page_id`, marking it dirty.
    /// Concurrent mutators of the *same* page must be excluded by the caller
    /// (the store's per-leaf latches, or the tree write lock on the serial and
    /// structural paths); the shard lock only protects the pool bookkeeping.
    pub fn with_leaf_mut<R>(
        &self,
        page_id: u64,
        f: impl FnOnce(&mut LeafPage) -> R,
    ) -> StorageResult<(R, bool)> {
        let mut shard = self.shards[self.shard_of(page_id)].lock();
        let from_disk = self.ensure_resident(&mut shard, page_id)?;
        shard.clock += 1;
        let stamp = shard.clock;
        let page = shard.pages.get_mut(&page_id).expect("page just ensured");
        page.stamp = stamp;
        page.dirty = true;
        let out = f(&mut page.leaf);
        Ok((out, from_disk))
    }

    /// Install a brand-new leaf (e.g. the right sibling of a split) without
    /// reading the device.
    pub fn install_new(&self, page_id: u64, leaf: LeafPage) -> StorageResult<()> {
        let mut shard = self.shards[self.shard_of(page_id)].lock();
        shard.clock += 1;
        let stamp = shard.clock;
        shard.pages.insert(
            page_id,
            CachedPage {
                leaf,
                dirty: true,
                stamp,
            },
        );
        self.evict_if_needed(&mut shard)?;
        Ok(())
    }

    /// Fault every non-resident page of `page_ids` with **one** coalesced
    /// device scatter (instead of one read per page as each leaf group would
    /// pay via [`BufferPool::with_leaf`]) and return the decoded leaves.
    ///
    /// The batch may be far larger than the pool: fetched pages are installed
    /// into spare pool capacity only (never evicting resident — possibly
    /// dirty, definitely warmer — pages), and the caller serves its groups
    /// from the returned copies either way. A non-resident page's on-device
    /// bytes are current as of the submit (eviction writes dirty pages back);
    /// a *latched* writer mutating the page concurrently necessarily overlaps
    /// the read batch, so serving the fetched pre-image is a valid
    /// linearisation (structural changes are still excluded by the tree read
    /// lock the caller holds).
    ///
    /// Best-effort: pages with no on-device home (fresh leaves that live only
    /// in the pool), undecodable pages, and whole batches whose scatter read
    /// fails are simply absent from the result; the per-leaf path surfaces
    /// their genuine state or error. Callers must attribute reads served from
    /// the returned leaves to disk in their metrics.
    pub fn fault_batch(&self, page_ids: &[u64]) -> HashMap<u64, LeafPage> {
        self.submit_fault_batch(page_ids).wait()
    }

    /// Submit the scatter behind [`BufferPool::fault_batch`] and return a
    /// handle to finish it with. Under the async backend the leaf reads
    /// overlap whatever the caller does between submit and
    /// [`PendingLeafFetch::wait`] — `BtreeStore::multi_get` builds its leaf
    /// groups in that window.
    pub fn submit_fault_batch(&self, page_ids: &[u64]) -> PendingLeafFetch<'_> {
        if !self.planner.coalescing() {
            // Coalescing off restores the exact per-record path: each leaf
            // group faults its own page (overlapping across executor workers)
            // instead of this batched pre-pass.
            return PendingLeafFetch {
                pool: self,
                missing: Vec::new(),
                pending: None,
            };
        }
        let mut missing: Vec<u64> = page_ids
            .iter()
            .copied()
            .filter(|&id| {
                !self.shards[self.shard_of(id)]
                    .lock()
                    .pages
                    .contains_key(&id)
            })
            .collect();
        missing.sort_unstable();
        missing.dedup();
        let device_len = self.device.len();
        missing.retain(|id| (id + 1) * self.page_size as u64 <= device_len);
        if missing.is_empty() {
            return PendingLeafFetch {
                pool: self,
                missing,
                pending: None,
            };
        }
        let reqs: Vec<ReadReq> = missing
            .iter()
            .map(|id| ReadReq::new(id * self.page_size as u64, self.page_size))
            .collect();
        let pending = Some(self.planner.submit(self.device.as_ref(), reqs));
        PendingLeafFetch {
            pool: self,
            missing,
            pending,
        }
    }

    /// Decode the fetched leaves and warm spare pool capacity with them
    /// (completion half of the fault-batch scatter).
    fn finish_fault_batch(&self, missing: Vec<u64>, reqs: Vec<ReadReq>) -> HashMap<u64, LeafPage> {
        let mut fetched = HashMap::with_capacity(missing.len());
        for (id, req) in missing.into_iter().zip(reqs) {
            if let Ok(leaf) = LeafPage::decode(&req.buf) {
                self.metrics
                    .record_background_disk_read(self.page_size as u64);
                fetched.insert(id, leaf);
            }
        }
        // Warm the pool with as many fetched pages as fit for free. Resident
        // pages are never displaced (they may be dirty, and they are warmer
        // than a batch that just swept the key space).
        for (id, leaf) in &fetched {
            let mut shard = self.shards[self.shard_of(*id)].lock();
            if shard.pages.len() >= shard.capacity {
                continue;
            }
            shard.clock += 1;
            let stamp = shard.clock;
            shard.pages.entry(*id).or_insert(CachedPage {
                leaf: leaf.clone(),
                dirty: false,
                stamp,
            });
        }
        fetched
    }

    /// Read and decode the leaf at `page_id` from the device (no pool lock
    /// required).
    fn read_leaf(&self, page_id: u64) -> StorageResult<LeafPage> {
        let offset = page_id * self.page_size as u64;
        if offset >= self.device.len() {
            return Err(StorageError::Corruption(format!(
                "leaf page {page_id} does not exist on device"
            )));
        }
        let mut buf = vec![0u8; self.page_size];
        self.device.read_at(offset, &mut buf)?;
        self.metrics
            .record_background_disk_read(self.page_size as u64);
        LeafPage::decode(&buf)
    }

    fn ensure_resident(&self, shard: &mut PoolShard, page_id: u64) -> StorageResult<bool> {
        if shard.pages.contains_key(&page_id) {
            return Ok(false);
        }
        // Fault the page in from the device. Mutable accesses to one page are
        // already serialised by the store (leaf latch or tree write lock), so
        // unlike `with_leaf` there is no concurrency to win by dropping the
        // shard lock here.
        let leaf = self.read_leaf(page_id)?;
        shard.clock += 1;
        let stamp = shard.clock;
        shard.pages.insert(
            page_id,
            CachedPage {
                leaf,
                dirty: false,
                stamp,
            },
        );
        self.evict_if_needed(shard)?;
        Ok(true)
    }

    fn evict_if_needed(&self, shard: &mut PoolShard) -> StorageResult<()> {
        while shard.pages.len() > shard.capacity {
            let victim = shard
                .pages
                .iter()
                .min_by_key(|(_, p)| p.stamp)
                .map(|(id, _)| *id)
                .expect("non-empty");
            let page = shard.pages.remove(&victim).expect("victim exists");
            if page.dirty {
                self.write_leaf(victim, &page.leaf)?;
            }
            self.metrics.record_eviction();
        }
        Ok(())
    }

    fn write_leaf(&self, page_id: u64, leaf: &LeafPage) -> StorageResult<()> {
        let encoded = leaf.encode();
        if encoded.len() > self.page_size {
            return Err(StorageError::InvalidArgument(format!(
                "leaf page {page_id} of {} bytes exceeds page size {}",
                encoded.len(),
                self.page_size
            )));
        }
        let mut buf = vec![0u8; self.page_size];
        buf[..encoded.len()].copy_from_slice(&encoded);
        self.device
            .write_at(page_id * self.page_size as u64, &buf)?;
        self.metrics.record_disk_write(self.page_size as u64);
        Ok(())
    }

    /// Encoded bytes of leaf `page_id`'s *current* content, faulting it in if
    /// it was evicted since it was touched (the eviction wrote it back, so the
    /// faulted copy is current). Used to journal post-images of mutated
    /// leaves.
    pub fn leaf_image(&self, page_id: u64) -> StorageResult<Vec<u8>> {
        Ok(self.with_leaf(page_id, |leaf| leaf.encode())?.0)
    }

    /// Harden every byte written to the leaf device (durability barrier).
    pub fn sync(&self) -> StorageResult<()> {
        self.device.sync()
    }

    /// Write every dirty resident page back to the device (checkpoint barrier).
    pub fn flush_all(&self) -> StorageResult<()> {
        for shard_lock in &self.shards {
            let mut shard = shard_lock.lock();
            let dirty_ids: Vec<u64> = shard
                .pages
                .iter()
                .filter(|(_, p)| p.dirty)
                .map(|(id, _)| *id)
                .collect();
            for id in dirty_ids {
                let leaf = shard.pages.get(&id).expect("listed above").leaf.clone();
                self.write_leaf(id, &leaf)?;
                shard.pages.get_mut(&id).expect("listed above").dirty = false;
            }
        }
        Ok(())
    }
}

/// A batch's cold-leaf scatter in flight ([`BufferPool::submit_fault_batch`]).
pub struct PendingLeafFetch<'a> {
    pool: &'a BufferPool,
    missing: Vec<u64>,
    /// `None` when nothing needed fetching (or coalescing is off).
    pending: Option<PendingRead>,
}

impl PendingLeafFetch<'_> {
    /// True once waiting would not park.
    pub fn try_complete(&self) -> bool {
        self.pending.as_ref().is_none_or(PendingRead::try_complete)
    }

    /// Finish the fetch: park on the scatter, decode the leaves and warm
    /// spare pool capacity. Best-effort like [`BufferPool::fault_batch`]: a
    /// failed scatter simply yields no leaves and the per-leaf path surfaces
    /// genuine states or errors.
    pub fn wait(self) -> HashMap<u64, LeafPage> {
        let Self {
            pool,
            missing,
            pending,
        } = self;
        let Some(pending) = pending else {
            return HashMap::new();
        };
        let Ok(reqs) = pending.wait() else {
            return HashMap::new();
        };
        pool.finish_fault_batch(missing, reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::MemDevice;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(
            Arc::new(MemDevice::new()),
            capacity,
            4096,
            1,
            IoPlanner::default(),
            Arc::new(StorageMetrics::new()),
        )
    }

    #[test]
    fn install_and_read_back() {
        let pool = pool(4);
        let mut leaf = LeafPage::new();
        leaf.insert(1, vec![1, 2, 3]);
        pool.install_new(0, leaf).unwrap();
        let (value, from_disk) = pool.with_leaf(0, |l| l.get(1).map(|v| v.to_vec())).unwrap();
        assert_eq!(value, Some(vec![1, 2, 3]));
        assert!(!from_disk);
    }

    #[test]
    fn eviction_writes_back_and_refault_reads_from_disk() {
        let pool = pool(2);
        for id in 0..5u64 {
            let mut leaf = LeafPage::new();
            leaf.insert(id, vec![id as u8; 8]);
            pool.install_new(id, leaf).unwrap();
        }
        assert!(pool.resident_pages() <= 2);
        // Page 0 was evicted; reading it must fault from the device with its data intact.
        let (value, from_disk) = pool.with_leaf(0, |l| l.get(0).map(|v| v.to_vec())).unwrap();
        assert!(from_disk);
        assert_eq!(value, Some(vec![0u8; 8]));
    }

    #[test]
    fn missing_page_is_an_error() {
        let pool = pool(2);
        assert!(pool.with_leaf(99, |_| ()).is_err());
    }

    #[test]
    fn mutation_marks_dirty_and_survives_eviction() {
        let pool = pool(2);
        let mut leaf = LeafPage::new();
        leaf.insert(7, vec![1]);
        pool.install_new(0, leaf).unwrap();
        pool.flush_all().unwrap();
        pool.with_leaf_mut(0, |l| {
            l.insert(7, vec![9, 9]);
        })
        .unwrap();
        // Force eviction of page 0 by touching others.
        for id in 1..5u64 {
            pool.install_new(id, LeafPage::new()).unwrap();
        }
        let (value, _) = pool.with_leaf(0, |l| l.get(7).map(|v| v.to_vec())).unwrap();
        assert_eq!(value, Some(vec![9, 9]));
    }

    #[test]
    fn fault_batch_fetches_cold_pages_with_one_scatter() {
        let pool = pool(8);
        for id in 0..6u64 {
            let mut leaf = LeafPage::new();
            leaf.insert(id * 10, vec![id as u8; 8]);
            pool.install_new(id, leaf).unwrap();
        }
        pool.flush_all().unwrap();
        // Drop residency by rebuilding a small pool over the same device.
        let device = Arc::clone(&pool.device);
        let cold = BufferPool::new(
            device,
            2,
            4096,
            1,
            IoPlanner::default(),
            Arc::new(StorageMetrics::new()),
        );
        // Duplicates and a page beyond the device mixed in; the batch (5
        // pages) exceeds the pool capacity (2).
        let fetched = cold.fault_batch(&[3, 0, 3, 5, 1, 4, 99]);
        let mut ids: Vec<u64> = fetched.keys().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 3, 4, 5]);
        for (&id, leaf) in &fetched {
            assert_eq!(leaf.get(id * 10), Some(vec![id as u8; 8].as_slice()));
        }
        // Spare capacity was warmed, but never beyond the pool size.
        assert!(cold.resident_pages() <= 2);
        // A fully-resident batch fetches nothing.
        assert!(
            pool.fault_batch(&[0, 1, 2]).is_empty(),
            "pages still resident in original pool"
        );
        // Missing pages still error through the per-leaf path.
        assert!(cold.with_leaf(99, |_| ()).is_err());
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let device = Arc::new(MemDevice::new());
        let metrics = Arc::new(StorageMetrics::new());
        let pool = BufferPool::new(
            Arc::clone(&device) as Arc<dyn Device>,
            8,
            4096,
            1,
            IoPlanner::default(),
            metrics,
        );
        let mut leaf = LeafPage::new();
        leaf.insert(3, vec![3]);
        pool.install_new(0, leaf).unwrap();
        assert_eq!(device.len(), 0);
        pool.flush_all().unwrap();
        assert_eq!(device.len(), 4096);
    }

    #[test]
    fn oversized_leaf_write_is_rejected() {
        let device: Arc<dyn Device> = Arc::new(MemDevice::new());
        let pool = BufferPool::new(
            device,
            2,
            64,
            1,
            IoPlanner::default(),
            Arc::new(StorageMetrics::new()),
        );
        let mut leaf = LeafPage::new();
        leaf.insert(1, vec![0; 128]);
        pool.install_new(0, leaf).unwrap();
        assert!(pool.flush_all().is_err());
    }
}
