//! Leaf pages of the B+tree.

use mlkv_storage::{StorageError, StorageResult};

/// A leaf page: sorted `(key, value)` entries plus a byte-size estimate used to
/// decide when the leaf must split to stay within one disk page.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeafPage {
    entries: Vec<(u64, Vec<u8>)>,
    bytes: usize,
}

/// Per-entry serialization overhead (key + value length prefix).
const ENTRY_OVERHEAD: usize = 12;
/// Leaf header: entry count.
const LEAF_HEADER: usize = 4;

impl LeafPage {
    /// Create an empty leaf.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a leaf from already-sorted entries.
    pub fn from_sorted(entries: Vec<(u64, Vec<u8>)>) -> Self {
        let bytes = entries.iter().map(|(_, v)| ENTRY_OVERHEAD + v.len()).sum();
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        Self { entries, bytes }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the leaf holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized size of the leaf.
    pub fn byte_size(&self) -> usize {
        LEAF_HEADER + self.bytes
    }

    /// Largest key stored in the leaf (used as its separator in the parent).
    pub fn max_key(&self) -> Option<u64> {
        self.entries.last().map(|(k, _)| *k)
    }

    /// Smallest key stored in the leaf.
    pub fn min_key(&self) -> Option<u64> {
        self.entries.first().map(|(k, _)| *k)
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// Insert or overwrite `key`. Returns `true` when the key was new.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) -> bool {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => {
                self.bytes -= self.entries[i].1.len();
                self.bytes += value.len();
                self.entries[i].1 = value;
                false
            }
            Err(i) => {
                self.bytes += ENTRY_OVERHEAD + value.len();
                self.entries.insert(i, (key, value));
                true
            }
        }
    }

    /// Remove `key`. Returns `true` when it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => {
                let (_, v) = self.entries.remove(i);
                self.bytes -= ENTRY_OVERHEAD + v.len();
                true
            }
            Err(_) => false,
        }
    }

    /// True when the serialized leaf would exceed `page_capacity` bytes.
    pub fn overflows(&self, page_capacity: usize) -> bool {
        self.byte_size() > page_capacity
    }

    /// True when upserting `key` with a `value_len`-byte value would keep the
    /// serialized leaf within `page_capacity` bytes. The latched write path
    /// pre-checks this so a would-split insert can escalate to the tree lock
    /// *before* mutating the leaf (a latched leaf must never transiently
    /// overflow — eviction would fail to write it back).
    pub fn fits_after_upsert(&self, key: u64, value_len: usize, page_capacity: usize) -> bool {
        let size = match self.get(key) {
            Some(old) => self.byte_size() - old.len() + value_len,
            None => self.byte_size() + ENTRY_OVERHEAD + value_len,
        };
        size <= page_capacity
    }

    /// Split the leaf in half (by byte size), returning the new right sibling.
    /// `self` keeps the lower keys.
    pub fn split(&mut self) -> LeafPage {
        let target = self.bytes / 2;
        let mut acc = 0usize;
        let mut split_at = self.entries.len() / 2;
        for (i, (_, v)) in self.entries.iter().enumerate() {
            acc += ENTRY_OVERHEAD + v.len();
            if acc >= target {
                split_at = (i + 1).min(self.entries.len() - 1).max(1);
                break;
            }
        }
        let right_entries = self.entries.split_off(split_at);
        let right = LeafPage::from_sorted(right_entries);
        self.bytes = self
            .entries
            .iter()
            .map(|(_, v)| ENTRY_OVERHEAD + v.len())
            .sum();
        right
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Vec<u8>)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Serialize the leaf.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (k, v) in &self.entries {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        out
    }

    /// Deserialize a leaf produced by [`LeafPage::encode`].
    pub fn decode(bytes: &[u8]) -> StorageResult<Self> {
        if bytes.len() < LEAF_HEADER {
            return Err(StorageError::Corruption("leaf page truncated".into()));
        }
        let count = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let mut entries = Vec::with_capacity(count);
        let mut pos = LEAF_HEADER;
        for _ in 0..count {
            if pos + 12 > bytes.len() {
                return Err(StorageError::Corruption("leaf entry truncated".into()));
            }
            let key = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            let vlen = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().unwrap()) as usize;
            pos += 12;
            if pos + vlen > bytes.len() {
                return Err(StorageError::Corruption("leaf value truncated".into()));
            }
            entries.push((key, bytes[pos..pos + vlen].to_vec()));
            pos += vlen;
        }
        Ok(Self::from_sorted(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut leaf = LeafPage::new();
        assert!(leaf.insert(5, vec![5]));
        assert!(leaf.insert(1, vec![1]));
        assert!(!leaf.insert(5, vec![50]));
        assert_eq!(leaf.get(5), Some(&[50][..]));
        assert_eq!(leaf.get(1), Some(&[1][..]));
        assert_eq!(leaf.get(9), None);
        assert_eq!(leaf.min_key(), Some(1));
        assert_eq!(leaf.max_key(), Some(5));
        assert!(leaf.remove(1));
        assert!(!leaf.remove(1));
        assert_eq!(leaf.len(), 1);
    }

    #[test]
    fn byte_size_tracks_contents() {
        let mut leaf = LeafPage::new();
        let empty = leaf.byte_size();
        leaf.insert(1, vec![0; 100]);
        assert_eq!(leaf.byte_size(), empty + 12 + 100);
        leaf.insert(1, vec![0; 10]);
        assert_eq!(leaf.byte_size(), empty + 12 + 10);
        leaf.remove(1);
        assert_eq!(leaf.byte_size(), empty);
    }

    #[test]
    fn split_preserves_order_and_content() {
        let mut leaf = LeafPage::new();
        for k in 0..100u64 {
            leaf.insert(k, vec![k as u8; 10]);
        }
        let right = leaf.split();
        assert!(!leaf.is_empty() && !right.is_empty());
        assert!(leaf.max_key().unwrap() < right.min_key().unwrap());
        assert_eq!(leaf.len() + right.len(), 100);
        for k in 0..100u64 {
            let v = leaf.get(k).or_else(|| right.get(k)).unwrap();
            assert_eq!(v, &vec![k as u8; 10][..]);
        }
    }

    #[test]
    fn overflow_detection() {
        let mut leaf = LeafPage::new();
        for k in 0..10u64 {
            leaf.insert(k, vec![0; 100]);
        }
        assert!(leaf.overflows(512));
        assert!(!leaf.overflows(4096));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut leaf = LeafPage::new();
        for k in [3u64, 1, 7] {
            leaf.insert(k, vec![k as u8; k as usize]);
        }
        let decoded = LeafPage::decode(&leaf.encode()).unwrap();
        assert_eq!(decoded, leaf);
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(LeafPage::decode(&[1]).is_err());
        let mut bytes = 5u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 4]);
        assert!(LeafPage::decode(&bytes).is_err());
    }
}
