//! The B+tree store: in-memory separator level + buffer-pooled leaf pages,
//! behind the [`KvStore`] interface.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use mlkv_storage::device::device_from_config;
use mlkv_storage::exec::{available_parallelism, BatchExecutor};
use mlkv_storage::kv::{BatchRmwFn, Key, KvStore, ReadResult, ReadSource, RmwFn};
use mlkv_storage::wal::{WalReader, WalWriter};
use mlkv_storage::{
    Device, DurabilityMode, StorageError, StorageMetrics, StorageResult, StoreConfig,
};

use crate::buffer_pool::BufferPool;
use crate::node::LeafPage;

/// Journal record tags (first payload byte on the shared WAL framing).
const JOURNAL_PAGE: u8 = 1; // [tag][page_id u64 LE][encoded leaf image]
const JOURNAL_META: u8 = 2; // [tag][encoded tree meta]
const JOURNAL_LIVE: u8 = 3; // [tag][live record count u64 LE]

/// File name of journal generation `gen` inside the store directory.
fn journal_file_name(gen: u64) -> String {
    format!("btree_journal_{gen}.dat")
}

/// The journal generations present in `dir`, ascending (i.e. chronological).
fn journal_generations(dir: &std::path::Path) -> Vec<u64> {
    let mut gens = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some(rest) = name
                .to_str()
                .and_then(|n| n.strip_prefix("btree_journal_"))
                .and_then(|n| n.strip_suffix(".dat"))
            {
                if let Ok(gen) = rest.parse::<u64>() {
                    gens.push(gen);
                }
            }
        }
    }
    gens.sort_unstable();
    gens
}

/// The page-image journal past the last flush, rotated by every flush.
struct JournalHandle {
    writer: WalWriter,
    gen: u64,
}

/// Separator map: `max key reachable through this leaf -> leaf page id`. The
/// rightmost leaf always carries `u64::MAX` so that every key routes somewhere.
type Separators = BTreeMap<u64, u64>;

struct TreeMeta {
    separators: Separators,
    next_page_id: u64,
}

/// Value producer for one position of a batched upsert: receives the position
/// and the key's current value, returns the bytes to store (or an error, which
/// aborts that position and propagates).
type UpsertFn<'a> = dyn Fn(usize, Option<&[u8]>) -> StorageResult<Vec<u8>> + Sync + 'a;

/// What one latched leaf group produced (see `BtreeStore::multi_upsert`).
struct GroupOutcome {
    page_id: u64,
    /// `(position, stored value)` for every op applied under the latch.
    values: Vec<(usize, Vec<u8>)>,
    /// Positions that would split the leaf — escalated to the tree lock.
    deferred: Vec<usize>,
    /// True when at least one op mutated the leaf.
    touched: bool,
}

/// Disk-paged B+tree key-value store (WiredTiger stand-in).
///
/// Write concurrency: small batches (and `write_shards = 1`) take the tree
/// write lock and run the legacy serial path. Large batches hold the tree lock
/// *shared* and latch the leaves they touch instead: `multi_upsert` routes the
/// batch into leaf-disjoint groups, acquires the groups' latch lanes in
/// ascending order, fans the groups out over the write executor, and journals
/// one group per acknowledged batch. Structural modifications (leaf splits)
/// escalate to the tree write lock; everything else only ever latches leaves.
pub struct BtreeStore {
    config: StoreConfig,
    metrics: Arc<StorageMetrics>,
    pool: BufferPool,
    meta_device: Arc<dyn Device>,
    tree: RwLock<TreeMeta>,
    live: AtomicU64,
    executor: BatchExecutor,
    write_executor: BatchExecutor,
    /// Fixed table of leaf-latch lanes (page-id hash → lane). Writers lock
    /// their batch's lanes in ascending index order, so concurrent latched
    /// batches are deadlock-free; distinct leaves sharing a lane merely
    /// serialise.
    leaf_latches: Vec<Mutex<()>>,
    /// `None` under [`DurabilityMode::None`] (or without a directory): flushes
    /// are then the only durability, as in the seed. Otherwise every
    /// acknowledged mutation journals the post-images of the leaves it
    /// touched, and the journal is replayed over the base files on open.
    journal: Option<RwLock<JournalHandle>>,
}

const META_MAGIC: u64 = 0x4D4C_4B56_4254_5245; // "MLKVBTRE"

impl BtreeStore {
    /// Open (or create) a store described by `config`.
    pub fn open(config: StoreConfig) -> StorageResult<Self> {
        let metrics = Arc::new(StorageMetrics::new());
        let leaf_device = device_from_config(&config, "btree_leaves.dat")?;
        let meta_device = device_from_config(&config, "btree_meta.dat")?;
        let capacity_pages = (config.memory_budget / config.page_size).max(2);
        let write_shards = match config.effective_write_shards() {
            0 => available_parallelism(),
            n => n,
        };
        let pool = BufferPool::new(
            leaf_device,
            capacity_pages,
            config.page_size,
            write_shards,
            mlkv_storage::IoPlanner::from_config(&config).with_metrics(Arc::clone(&metrics)),
            Arc::clone(&metrics),
        );

        let (meta, live) = if !meta_device.is_empty() {
            Self::decode_meta(meta_device.as_ref())?
        } else {
            // Fresh tree: a single empty leaf covering the whole key space.
            pool.install_new(0, LeafPage::new())?;
            let mut separators = Separators::new();
            separators.insert(u64::MAX, 0);
            (
                TreeMeta {
                    separators,
                    next_page_id: 1,
                },
                0,
            )
        };

        let mut store = Self {
            executor: BatchExecutor::new(config.parallelism),
            write_executor: BatchExecutor::new(write_shards),
            // Eight lanes per write shard keep false lane-sharing between
            // concurrent batches rare while still scaling with the knob.
            leaf_latches: (0..write_shards * 8).map(|_| Mutex::new(())).collect(),
            config,
            metrics,
            pool,
            meta_device,
            tree: RwLock::new(meta),
            live: AtomicU64::new(live),
            journal: None,
        };
        if let Some(dir) = store.config.dir.clone() {
            store.replay_journal(&dir)?;
            if store.config.effective_durability() != DurabilityMode::None {
                let gens = journal_generations(&dir);
                let gen = gens.last().map(|g| g + 1).unwrap_or(0);
                let device = device_from_config(&store.config, &journal_file_name(gen))?;
                store.journal = Some(RwLock::new(JournalHandle {
                    writer: WalWriter::new(
                        device,
                        store.config.effective_durability(),
                        Arc::clone(&store.metrics),
                    )
                    .with_tap(store.config.wal_tap.clone()),
                    gen,
                }));
            }
        }
        Ok(store)
    }

    /// Replay any surviving journal generations over the base leaf/meta files,
    /// in ascending (chronological) order. Page records re-install the
    /// journaled post-image of a leaf — replacing whatever (possibly torn or
    /// stale) bytes the crash left on the leaf device — and meta/live records
    /// restore the routing table and record count as of the covering
    /// acknowledgement. Replaying an image that is already on disk is
    /// idempotent, so generations are *not* deleted here: until the next
    /// flush they remain the only durable copy of their pages. They are
    /// garbage-collected by [`BtreeStore::rotate_journal`] at flush time.
    fn replay_journal(&mut self, dir: &std::path::Path) -> StorageResult<()> {
        for gen in journal_generations(dir) {
            let device = device_from_config(&self.config, &journal_file_name(gen))?;
            for payload in WalReader::replay(device.as_ref())? {
                match payload.first().copied() {
                    Some(JOURNAL_PAGE) if payload.len() > 9 => {
                        let page_id = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                        let leaf = LeafPage::decode(&payload[9..])?;
                        self.pool.install_new(page_id, leaf)?;
                    }
                    Some(JOURNAL_META) if payload.len() > 1 => {
                        let (meta, live) = Self::decode_meta_bytes(&payload[1..])?;
                        *self.tree.get_mut() = meta;
                        self.live.store(live, Ordering::SeqCst);
                    }
                    Some(JOURNAL_LIVE) if payload.len() >= 9 => {
                        let live = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                        self.live.store(live, Ordering::SeqCst);
                    }
                    _ => {
                        return Err(StorageError::Corruption(
                            "unknown btree journal record".into(),
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    /// Journal one acknowledged mutation: the post-images of every leaf it
    /// touched, a meta record when the routing table changed, and the live
    /// count — all as **one** grouped append, acknowledged with a single
    /// commit. Must be called under the tree write lock so the images are
    /// consistent with the acknowledged state.
    fn journal_commit(
        &self,
        tree: &TreeMeta,
        touched: &BTreeSet<u64>,
        meta_changed: bool,
    ) -> StorageResult<()> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(touched.len() + 2);
        for &page_id in touched {
            let image = self.pool.leaf_image(page_id)?;
            let mut p = Vec::with_capacity(9 + image.len());
            p.push(JOURNAL_PAGE);
            p.extend_from_slice(&page_id.to_le_bytes());
            p.extend_from_slice(&image);
            payloads.push(p);
        }
        if meta_changed {
            let mut p = vec![JOURNAL_META];
            p.extend_from_slice(&self.encode_meta(tree));
            payloads.push(p);
        }
        let mut p = vec![JOURNAL_LIVE];
        p.extend_from_slice(&self.live.load(Ordering::SeqCst).to_le_bytes());
        payloads.push(p);
        let handle = journal.read();
        handle
            .writer
            .append_group(payloads.iter().map(|p| p.as_slice()))?;
        handle.writer.commit()
    }

    /// Start a new journal generation and delete the superseded ones. Called
    /// by [`BtreeStore::flush`] *after* the leaf and meta devices are
    /// hardened: every journaled image is then covered by the base files.
    fn rotate_journal(&self) -> StorageResult<()> {
        let dir = match &self.config.dir {
            Some(dir) => dir.clone(),
            None => return Ok(()),
        };
        match &self.journal {
            Some(journal) => {
                let mut handle = journal.write();
                let old_gen = handle.gen;
                let device = device_from_config(&self.config, &journal_file_name(old_gen + 1))?;
                handle.writer = WalWriter::new(
                    device,
                    self.config.effective_durability(),
                    Arc::clone(&self.metrics),
                )
                .with_tap(self.config.wal_tap.clone());
                handle.gen = old_gen + 1;
                drop(handle);
                for gen in journal_generations(&dir) {
                    if gen <= old_gen {
                        let _ = std::fs::remove_file(dir.join(journal_file_name(gen)));
                    }
                }
            }
            None => {
                for gen in journal_generations(&dir) {
                    let _ = std::fs::remove_file(dir.join(journal_file_name(gen)));
                }
            }
        }
        Ok(())
    }

    /// Convenience constructor for tests: purely in-memory store.
    pub fn in_memory(memory_budget: usize) -> StorageResult<Self> {
        Self::open(
            StoreConfig::in_memory()
                .with_memory_budget(memory_budget)
                .with_page_size(4096),
        )
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of leaf pages in the tree.
    pub fn leaf_count(&self) -> usize {
        self.tree.read().separators.len()
    }

    fn decode_meta(device: &dyn Device) -> StorageResult<(TreeMeta, u64)> {
        let len = device.len() as usize;
        let mut bytes = vec![0u8; len];
        device.read_at(0, &mut bytes)?;
        Self::decode_meta_bytes(&bytes)
    }

    fn decode_meta_bytes(bytes: &[u8]) -> StorageResult<(TreeMeta, u64)> {
        let len = bytes.len();
        if len < 32 {
            return Err(StorageError::Corruption("btree meta truncated".into()));
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        if word(0) != META_MAGIC {
            return Err(StorageError::Corruption("bad btree meta magic".into()));
        }
        let next_page_id = word(1);
        let live = word(2);
        let count = word(3) as usize;
        let mut separators = Separators::new();
        let mut pos = 32;
        for _ in 0..count {
            if pos + 16 > len {
                return Err(StorageError::Corruption(
                    "btree meta entry truncated".into(),
                ));
            }
            let sep = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            let page = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
            separators.insert(sep, page);
            pos += 16;
        }
        Ok((
            TreeMeta {
                separators,
                next_page_id,
            },
            live,
        ))
    }

    fn encode_meta(&self, meta: &TreeMeta) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + meta.separators.len() * 16);
        out.extend_from_slice(&META_MAGIC.to_le_bytes());
        out.extend_from_slice(&meta.next_page_id.to_le_bytes());
        out.extend_from_slice(&self.live.load(Ordering::SeqCst).to_le_bytes());
        out.extend_from_slice(&(meta.separators.len() as u64).to_le_bytes());
        for (sep, page) in &meta.separators {
            out.extend_from_slice(&sep.to_le_bytes());
            out.extend_from_slice(&page.to_le_bytes());
        }
        out
    }

    /// Page id of the leaf responsible for `key`, together with its separator.
    fn route(separators: &Separators, key: Key) -> (u64, u64) {
        let (sep, page) = separators
            .range(key..)
            .next()
            .expect("rightmost separator is u64::MAX, so every key routes");
        (*sep, *page)
    }

    /// Usable payload capacity of one leaf page.
    fn leaf_capacity(&self) -> usize {
        self.config.page_size
    }

    /// Reject values that cannot fit a leaf page.
    fn check_value_size(&self, value: &[u8]) -> StorageResult<()> {
        if value.len() + 64 > self.leaf_capacity() {
            return Err(StorageError::InvalidArgument(format!(
                "value of {} bytes cannot fit a {}-byte leaf page",
                value.len(),
                self.leaf_capacity()
            )));
        }
        Ok(())
    }

    /// Serve one leaf page's group of a batched read under a single buffer-pool
    /// pin. `group` holds `(page id, original position)` pairs that all route
    /// to the same leaf; `fetched` holds the leaves the batch scatter-read via
    /// [`BufferPool::fault_batch`] — groups whose page is there are served
    /// from the fetched copy (and their reads count as disk reads). Returns
    /// `(original position, result)` pairs.
    fn read_leaf_group(
        &self,
        group: &[(u64, usize)],
        keys: &[Key],
        fetched: &std::collections::HashMap<u64, LeafPage>,
    ) -> Vec<(usize, StorageResult<Vec<u8>>)> {
        let page_id = group[0].0;
        let mut out = Vec::with_capacity(group.len());
        let result = match fetched.get(&page_id) {
            Some(leaf) => Ok((
                group
                    .iter()
                    .map(|&(_, i)| leaf.get(keys[i]).map(|v| v.to_vec()))
                    .collect::<Vec<_>>(),
                true,
            )),
            None => self.pool.with_leaf(page_id, |leaf| {
                group
                    .iter()
                    .map(|&(_, i)| leaf.get(keys[i]).map(|v| v.to_vec()))
                    .collect::<Vec<_>>()
            }),
        };
        match result {
            Ok((values, from_disk)) => {
                for (&(_, i), value) in group.iter().zip(values) {
                    out.push((
                        i,
                        match value {
                            Some(v) => {
                                if from_disk {
                                    self.metrics.record_disk_read(v.len() as u64);
                                } else {
                                    self.metrics.record_mem_hit();
                                }
                                Ok(v)
                            }
                            None => {
                                self.metrics.record_miss();
                                Err(StorageError::KeyNotFound)
                            }
                        },
                    ));
                }
            }
            Err(e) => {
                // Preserve the original error kind: the first key keeps it
                // verbatim, and the (error-path-only) re-probe lets every
                // other key in the group surface its own genuine error.
                let mut slots = group.iter();
                if let Some(&(_, i)) = slots.next() {
                    out.push((i, Err(e)));
                }
                for &(_, i) in slots {
                    out.push((
                        i,
                        self.pool
                            .with_leaf(page_id, |leaf| leaf.get(keys[i]).map(|v| v.to_vec()))
                            .and_then(|(value, _)| value.ok_or(StorageError::KeyNotFound)),
                    ));
                }
            }
        }
        out
    }

    /// Upsert `key` into the tree whose meta the caller holds write-locked.
    /// This is the body shared by `put`, `multi_rmw` and `write_batch`, so a
    /// batch pays for the tree lock once. The leaves mutated (including a
    /// split's new right sibling) are recorded in `touched`, and
    /// `meta_changed` is raised when the routing table changed — the caller
    /// journals both at its acknowledgement point.
    fn put_locked(
        &self,
        tree: &mut TreeMeta,
        key: Key,
        value: &[u8],
        touched: &mut BTreeSet<u64>,
        meta_changed: &mut bool,
    ) -> StorageResult<()> {
        self.metrics.record_upsert();
        let (sep, page_id) = Self::route(&tree.separators, key);
        let capacity = self.leaf_capacity();
        let (outcome, _) = self.pool.with_leaf_mut(page_id, |leaf| {
            let inserted = leaf.insert(key, value.to_vec());
            let split = leaf.overflows(capacity).then(|| leaf.split());
            (inserted, split, leaf.max_key())
        })?;
        let (inserted, split, left_max) = outcome;
        if inserted {
            self.live.fetch_add(1, Ordering::Relaxed);
        }
        touched.insert(page_id);
        match split {
            Some(right) => {
                // The right sibling inherits the old separator (upper bound of the
                // original leaf); the left leaf is re-keyed by its new max key.
                let right_id = tree.next_page_id;
                tree.next_page_id += 1;
                tree.separators.remove(&sep);
                tree.separators
                    .insert(left_max.expect("left leaf non-empty after split"), page_id);
                tree.separators.insert(sep, right_id);
                self.pool.install_new(right_id, right)?;
                touched.insert(right_id);
                *meta_changed = true;
            }
            None => {
                // Grow the separator if the new key extended the leaf's range
                // (only relevant for the rightmost leaf, whose separator is MAX,
                // so nothing to do; interior separators never shrink).
                if let Some(max) = left_max {
                    if max > sep {
                        tree.separators.remove(&sep);
                        tree.separators.insert(max, page_id);
                        *meta_changed = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// Latch lane guarding leaf `page_id`.
    fn latch_of(&self, page_id: u64) -> usize {
        let h = page_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h as usize) % self.leaf_latches.len()
    }

    /// The single mutation entry point: upsert `keys[i] -> compute(i, current)`
    /// for every position, in occurrence order per key, and journal the whole
    /// batch as one group at its acknowledgement point.
    ///
    /// Small batches (or `write_shards = 1`) run the serial path under the
    /// tree write lock. Large batches take the tree lock *shared*, latch the
    /// lanes of the leaf-disjoint groups the routing produced (ascending lane
    /// order — deadlock-free against other latched batches), and fan the
    /// groups out over the write executor. Each worker pre-checks that an
    /// upsert fits its leaf; a would-split op defers itself and the rest of
    /// its group (preserving per-key order) to an escalation phase that
    /// reruns them under the tree write lock, where splitting is safe.
    ///
    /// Concurrent latched batches interleave at leaf granularity: per-key
    /// atomicity and per-batch journal groups are preserved, but cross-key
    /// readers may observe a batch partially applied (same contract as the
    /// FASTER engine's sharded writes).
    fn multi_upsert(&self, keys: &[Key], compute: &UpsertFn) -> StorageResult<Vec<Vec<u8>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = vec![Vec::new(); keys.len()];
        if self.write_executor.planned_workers(keys.len()) <= 1 {
            // Serial path: one tree write-lock acquisition for the whole
            // batch; routing happens per key because an insert may split a
            // leaf mid-batch. Input order preserves duplicate-key writes.
            let mut tree = self.tree.write();
            let mut touched = BTreeSet::new();
            let mut meta_changed = false;
            for (i, &key) in keys.iter().enumerate() {
                let (_, page_id) = Self::route(&tree.separators, key);
                let (current, _) = self
                    .pool
                    .with_leaf(page_id, |leaf| leaf.get(key).map(|v| v.to_vec()))?;
                let value = compute(i, current.as_deref())?;
                self.put_locked(&mut tree, key, &value, &mut touched, &mut meta_changed)?;
                out[i] = value;
            }
            self.journal_commit(&tree, &touched, meta_changed)?;
            return Ok(out);
        }

        let mut touched = BTreeSet::new();
        let mut deferred: Vec<usize> = Vec::new();
        {
            let tree = self.tree.read();
            // Leaf-disjoint groups: stable sort by routed page keeps duplicate
            // keys (same leaf) in occurrence order within their group.
            let mut routed: Vec<(u64, usize)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (Self::route(&tree.separators, k).1, i))
                .collect();
            routed.sort_by_key(|&(page, _)| page);
            let mut groups: Vec<(u64, &[(u64, usize)])> = Vec::new();
            let mut pos = 0;
            while pos < routed.len() {
                let page_id = routed[pos].0;
                let mut end = pos;
                while end < routed.len() && routed[end].0 == page_id {
                    end += 1;
                }
                groups.push((page_id, &routed[pos..end]));
                pos = end;
            }
            // Latch every group's lane, ascending and dedup'd. Holding the
            // latches across apply + journal keeps other latched batches off
            // these leaves until this batch's journal group is acknowledged.
            let mut lanes: Vec<usize> = groups.iter().map(|&(p, _)| self.latch_of(p)).collect();
            lanes.sort_unstable();
            lanes.dedup();
            let _latches: Vec<_> = lanes.iter().map(|&l| self.leaf_latches[l].lock()).collect();

            let capacity = self.leaf_capacity();
            let run_group = |page_id: u64,
                             members: &[(u64, usize)]|
             -> StorageResult<GroupOutcome> {
                let mut values = Vec::with_capacity(members.len());
                let mut group_deferred = Vec::new();
                let mut inserts = 0u64;
                let mut touched = false;
                let (res, _) = self
                    .pool
                    .with_leaf_mut(page_id, |leaf| -> StorageResult<()> {
                        for (gi, &(_, i)) in members.iter().enumerate() {
                            let key = keys[i];
                            let current = leaf.get(key).map(|v| v.to_vec());
                            let value = compute(i, current.as_deref())?;
                            if !leaf.fits_after_upsert(key, value.len(), capacity) {
                                // Splitting needs the tree lock. Defer the rest of
                                // the group too, so later ops on this leaf (incl.
                                // duplicate keys) still apply after this one.
                                group_deferred.extend(members[gi..].iter().map(|&(_, i)| i));
                                return Ok(());
                            }
                            self.metrics.record_upsert();
                            if leaf.insert(key, value.clone()) {
                                inserts += 1;
                            }
                            touched = true;
                            values.push((i, value));
                        }
                        Ok(())
                    })?;
                res?;
                self.live.fetch_add(inserts, Ordering::Relaxed);
                Ok(GroupOutcome {
                    page_id,
                    values,
                    deferred: group_deferred,
                    touched,
                })
            };
            let results: Vec<StorageResult<GroupOutcome>> =
                if self.write_executor.workers_for(groups.len(), keys.len()) <= 1 {
                    groups.iter().map(|&(p, m)| run_group(p, m)).collect()
                } else {
                    let jobs: Vec<_> = groups
                        .iter()
                        .map(|&(p, m)| {
                            let run_group = &run_group;
                            move || run_group(p, m)
                        })
                        .collect();
                    self.write_executor.execute(jobs, keys.len())
                };
            for result in results {
                let group = result?;
                if group.touched {
                    touched.insert(group.page_id);
                }
                for (i, value) in group.values {
                    out[i] = value;
                }
                deferred.extend(group.deferred);
            }
            if deferred.is_empty() {
                // No structural change: acknowledge under the shared tree
                // lock, latches still held.
                self.journal_commit(&tree, &touched, false)?;
                return Ok(out);
            }
        }
        // Escalation: would-split ops rerun under the tree write lock (their
        // latches and the shared lock were released above — batch atomicity
        // across this boundary is traded for per-key linearizability). The
        // values are recomputed from the leaf's current state, so duplicate
        // keys still observe every earlier occurrence.
        deferred.sort_unstable();
        let mut tree = self.tree.write();
        let mut meta_changed = false;
        for i in deferred {
            let key = keys[i];
            let (_, page_id) = Self::route(&tree.separators, key);
            let (current, _) = self
                .pool
                .with_leaf(page_id, |leaf| leaf.get(key).map(|v| v.to_vec()))?;
            let value = compute(i, current.as_deref())?;
            self.put_locked(&mut tree, key, &value, &mut touched, &mut meta_changed)?;
            out[i] = value;
        }
        // One journal group still covers the whole batch: the escalated
        // leaves' post-images include the latched phase's mutations.
        self.journal_commit(&tree, &touched, meta_changed)?;
        Ok(out)
    }
}

impl KvStore for BtreeStore {
    fn name(&self) -> &'static str {
        // Matches `BackendKind::WiredTigerLike.name()` and the paper's figure labels.
        "WiredTiger"
    }

    fn get_traced(&self, key: Key) -> StorageResult<ReadResult> {
        let tree = self.tree.read();
        let (_, page_id) = Self::route(&tree.separators, key);
        let (value, from_disk) = self
            .pool
            .with_leaf(page_id, |leaf| leaf.get(key).map(|v| v.to_vec()))?;
        match value {
            Some(v) => {
                if from_disk {
                    self.metrics.record_disk_read(v.len() as u64);
                } else {
                    self.metrics.record_mem_hit();
                }
                Ok(ReadResult {
                    value: v,
                    source: if from_disk {
                        ReadSource::Disk
                    } else {
                        ReadSource::HotMemory
                    },
                })
            }
            None => {
                self.metrics.record_miss();
                Err(StorageError::KeyNotFound)
            }
        }
    }

    fn multi_get(&self, keys: &[Key]) -> Vec<StorageResult<Vec<u8>>> {
        // Sorted traversal: group the batch by leaf page so every page is
        // pinned in the buffer pool exactly once, no matter how many of the
        // batch's keys it serves. Large batches fan the page groups out over
        // executor workers — the groups are leaf-disjoint, so each worker
        // keeps the shared-pin behaviour within its groups and no leaf is
        // pinned by two workers on behalf of the same batch.
        let tree = self.tree.read();
        let mut routed: Vec<(u64, usize)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (Self::route(&tree.separators, k).1, i))
            .collect();
        routed.sort_unstable_by_key(|&(page, _)| page);
        // Submit the scatter for the batch's missing leaf pages first, so
        // the device fetches them while the leaf groups are being built
        // below (the pool bookkeeping the async backend overlaps). Groups
        // whose page was fetched read the returned copy (the tree read lock
        // held across this whole call excludes leaf mutations, so the copies
        // cannot go stale); everything else pins the pool as before, whether
        // serially or on executor workers.
        let mut page_ids: Vec<u64> = routed.iter().map(|&(page, _)| page).collect();
        page_ids.dedup(); // routed is page-sorted
        let pending_leaves = self.pool.submit_fault_batch(&page_ids);
        let mut groups: Vec<&[(u64, usize)]> = Vec::new();
        let mut pos = 0;
        while pos < routed.len() {
            let page_id = routed[pos].0;
            let mut end = pos;
            while end < routed.len() && routed[end].0 == page_id {
                end += 1;
            }
            groups.push(&routed[pos..end]);
            pos = end;
        }
        let fetched = pending_leaves.wait();
        let fetched = &fetched;
        let mut out: Vec<Option<StorageResult<Vec<u8>>>> = keys.iter().map(|_| None).collect();
        if self.executor.workers_for(groups.len(), keys.len()) <= 1 {
            for group in groups {
                for (i, result) in self.read_leaf_group(group, keys, fetched) {
                    out[i] = Some(result);
                }
            }
        } else {
            let jobs: Vec<_> = groups
                .into_iter()
                .map(|group| move || self.read_leaf_group(group, keys, fetched))
                .collect();
            for pairs in self.executor.execute(jobs, keys.len()) {
                for (i, result) in pairs {
                    out[i] = Some(result);
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        // Thin wrapper over the batch path: one mutation entry point.
        self.check_value_size(value)?;
        self.multi_upsert(&[key], &|_, _| Ok(value.to_vec()))?;
        Ok(())
    }

    fn rmw(&self, key: Key, f: &RmwFn) -> StorageResult<Vec<u8>> {
        // Thin wrapper over the batch path: one mutation entry point.
        self.metrics.record_rmw();
        let mut out = self.multi_upsert(&[key], &|_, current| {
            let value = f(current);
            self.check_value_size(&value)?;
            Ok(value)
        })?;
        Ok(out.pop().expect("single-key batch yields one value"))
    }

    fn multi_rmw(&self, keys: &[Key], f: &BatchRmwFn) -> StorageResult<Vec<Vec<u8>>> {
        // Metrics up front: an op deferred by the latched path recomputes its
        // value during escalation, and must not count twice.
        for _ in keys {
            self.metrics.record_rmw();
        }
        self.multi_upsert(keys, &|i, current| {
            let value = f(i, current);
            self.check_value_size(&value)?;
            Ok(value)
        })
    }

    fn exists(&self, key: Key) -> StorageResult<bool> {
        // Leaf probe without copying the value out of the page.
        let tree = self.tree.read();
        let (_, page_id) = Self::route(&tree.separators, key);
        let (found, _) = self
            .pool
            .with_leaf(page_id, |leaf| leaf.get(key).is_some())?;
        Ok(found)
    }

    fn write_batch(&self, batch: &mlkv_storage::WriteBatch) -> StorageResult<()> {
        // Thin wrapper over the batch path: one mutation entry point. The
        // size pre-check keeps the old all-or-nothing rejection of oversized
        // values before anything is applied.
        for (_, v) in batch.iter() {
            self.check_value_size(v)?;
        }
        let keys: Vec<Key> = batch.iter().map(|(k, _)| *k).collect();
        let values: Vec<&Vec<u8>> = batch.iter().map(|(_, v)| v).collect();
        self.multi_upsert(&keys, &|i, _| Ok(values[i].clone()))?;
        Ok(())
    }

    fn delete(&self, key: Key) -> StorageResult<()> {
        // Removal never splits or merges (this tree has no merges), so the
        // shared tree lock plus the leaf's latch lane suffice.
        let tree = self.tree.read();
        let (_, page_id) = Self::route(&tree.separators, key);
        let _latch = self.leaf_latches[self.latch_of(page_id)].lock();
        let (removed, _) = self.pool.with_leaf_mut(page_id, |leaf| leaf.remove(key))?;
        if removed {
            self.live.fetch_sub(1, Ordering::Relaxed);
        }
        let mut touched = BTreeSet::new();
        touched.insert(page_id);
        self.journal_commit(&tree, &touched, false)
    }

    fn approximate_len(&self) -> usize {
        self.live.load(Ordering::Relaxed) as usize
    }

    fn metrics(&self) -> Arc<StorageMetrics> {
        Arc::clone(&self.metrics)
    }

    fn flush(&self) -> StorageResult<()> {
        // Exclusive: latched writers hold the tree lock shared for their whole
        // apply + journal window, so taking it exclusively here guarantees no
        // acknowledged mutation sits only in a journal generation this flush
        // is about to rotate away.
        let tree = self.tree.write();
        self.pool.flush_all()?;
        self.meta_device.write_at(0, &self.encode_meta(&tree))?;
        if self.config.effective_durability() != DurabilityMode::None {
            // Harden the base files *before* rotating the journal away: until
            // both syncs return, the journal is the only durable copy of the
            // pages flushed above.
            self.pool.sync()?;
            self.meta_device.sync()?;
        }
        self.rotate_journal()
    }

    fn replication_tap(&self) -> Option<Arc<mlkv_storage::wal::WalTap>> {
        self.config.wal_tap.clone()
    }

    fn apply_replicated_group(&self, frames: &[Vec<u8>]) -> StorageResult<()> {
        // Shipped groups are page-image journal groups (see `journal_commit`):
        // install each post-image exactly as `replay_journal` does, under the
        // tree write lock so readers never observe a half-applied group, then
        // re-journal the applied images so the *replica's* journal covers them
        // across its own restarts.
        let mut tree = self.tree.write();
        let mut touched = BTreeSet::new();
        let mut meta_changed = false;
        for payload in frames {
            match payload.first().copied() {
                Some(JOURNAL_PAGE) if payload.len() > 9 => {
                    let page_id = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                    let leaf = LeafPage::decode(&payload[9..])?;
                    self.pool.install_new(page_id, leaf)?;
                    touched.insert(page_id);
                }
                Some(JOURNAL_META) if payload.len() > 1 => {
                    let (meta, live) = Self::decode_meta_bytes(&payload[1..])?;
                    *tree = meta;
                    self.live.store(live, Ordering::SeqCst);
                    meta_changed = true;
                }
                Some(JOURNAL_LIVE) if payload.len() >= 9 => {
                    let live = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                    self.live.store(live, Ordering::SeqCst);
                }
                _ => {
                    return Err(StorageError::Corruption(
                        "unknown replicated btree journal record".into(),
                    ))
                }
            }
        }
        self.journal_commit(&tree, &touched, meta_changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let store = BtreeStore::in_memory(1 << 20).unwrap();
        store.put(10, b"ten").unwrap();
        store.put(5, b"five").unwrap();
        assert_eq!(store.get(10).unwrap(), b"ten");
        assert_eq!(store.get(5).unwrap(), b"five");
        assert!(store.get(7).unwrap_err().is_not_found());
        assert_eq!(store.approximate_len(), 2);
        store.delete(10).unwrap();
        assert!(store.get(10).unwrap_err().is_not_found());
        assert_eq!(store.approximate_len(), 1);
        assert_eq!(store.name(), "WiredTiger");
    }

    #[test]
    fn multi_get_shares_leaf_pins_across_a_sorted_batch() {
        let store = BtreeStore::in_memory(1 << 20).unwrap();
        for k in 0..5000u64 {
            store.put(k, &[(k % 251) as u8; 32]).unwrap();
        }
        assert!(store.leaf_count() > 1);
        let keys: Vec<u64> = vec![4999, 0, 2500, 0, 1_000_000];
        let batch = store.multi_get(&keys);
        assert_eq!(batch[0].as_deref().unwrap(), &[(4999 % 251) as u8; 32]);
        assert_eq!(batch[1].as_deref().unwrap(), &[0u8; 32]);
        assert_eq!(batch[2].as_deref().unwrap(), &[(2500 % 251) as u8; 32]);
        assert_eq!(batch[3].as_deref().unwrap(), &[0u8; 32]);
        assert!(batch[4].as_ref().unwrap_err().is_not_found());
    }

    #[test]
    fn parallel_leaf_groups_match_serial_results() {
        let open = |parallelism| {
            BtreeStore::open(
                StoreConfig::in_memory()
                    .with_memory_budget(1 << 20)
                    .with_page_size(4096)
                    .with_parallelism(parallelism),
            )
            .unwrap()
        };
        let serial = open(1);
        let parallel = open(8);
        for store in [&serial, &parallel] {
            for k in 0..5000u64 {
                store.put(k, &[(k % 251) as u8; 32]).unwrap();
            }
        }
        assert!(parallel.leaf_count() > 1);
        let keys: Vec<u64> = (0..4096u64).map(|i| (i * 11) % 5200).collect();
        let a = serial.multi_get(&keys);
        let b = parallel.multi_get(&keys);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.as_ref().ok(),
                y.as_ref().ok(),
                "key {} (pos {i})",
                keys[i]
            );
        }
    }

    #[test]
    fn multi_rmw_survives_mid_batch_splits() {
        let store = BtreeStore::open(
            StoreConfig::in_memory()
                .with_memory_budget(64 << 10)
                .with_page_size(1 << 10),
        )
        .unwrap();
        // Values big enough that the batch forces leaf splits while it runs.
        let keys: Vec<u64> = (0..200).map(|i| i % 100).collect();
        store
            .multi_rmw(&keys, &|_, cur| {
                let n = cur.map(|b| b[0]).unwrap_or(0);
                vec![n + 1; 64]
            })
            .unwrap();
        assert!(store.leaf_count() > 1, "batch should have split leaves");
        for k in 0..100u64 {
            assert_eq!(store.get(k).unwrap(), vec![2u8; 64], "key {k}");
        }
    }

    #[test]
    fn exists_probes_leaves_without_copying() {
        let store = BtreeStore::in_memory(1 << 20).unwrap();
        store.put(10, b"ten").unwrap();
        assert!(store.exists(10).unwrap());
        assert!(!store.exists(11).unwrap());
        store.delete(10).unwrap();
        assert!(!store.exists(10).unwrap());
    }

    #[test]
    fn write_batch_sorted_traversal_applies_all_and_keeps_duplicate_order() {
        let store = BtreeStore::in_memory(1 << 20).unwrap();
        let mut batch = mlkv_storage::WriteBatch::new();
        for k in (0..500u64).rev() {
            batch.put(k, k.to_le_bytes().to_vec());
        }
        batch.put(7, b"second".to_vec()); // duplicate: later op must win
        store.write_batch(&batch).unwrap();
        assert_eq!(store.get(7).unwrap(), b"second");
        assert_eq!(store.get(499).unwrap(), 499u64.to_le_bytes());
        assert_eq!(store.approximate_len(), 500);
    }

    #[test]
    fn splits_keep_all_keys_reachable() {
        let store = BtreeStore::in_memory(1 << 20).unwrap();
        let n = 5000u64;
        for k in 0..n {
            store.put(k, &[(k % 251) as u8; 32]).unwrap();
        }
        assert!(store.leaf_count() > 1, "tree should have split");
        for k in 0..n {
            assert_eq!(store.get(k).unwrap(), vec![(k % 251) as u8; 32], "key {k}");
        }
        assert_eq!(store.approximate_len(), n as usize);
    }

    #[test]
    fn random_insertion_order_is_handled() {
        let store = BtreeStore::in_memory(1 << 20).unwrap();
        // Deterministic pseudo-random permutation via multiplication.
        let n = 3000u64;
        for i in 0..n {
            let k = (i.wrapping_mul(2654435761)) % 100_000;
            store.put(k, &k.to_le_bytes()).unwrap();
        }
        for i in 0..n {
            let k = (i.wrapping_mul(2654435761)) % 100_000;
            assert_eq!(store.get(k).unwrap(), k.to_le_bytes());
        }
    }

    #[test]
    fn cold_leaves_are_read_from_disk() {
        // Pool of only 2 pages: most leaves are cold.
        let store = BtreeStore::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(4 << 10),
        )
        .unwrap();
        for k in 0..3000u64 {
            store.put(k, &[1u8; 32]).unwrap();
        }
        // Reading a key far from the most recent inserts should hit disk.
        let r = store.get_traced(0).unwrap();
        assert_eq!(r.value, vec![1u8; 32]);
        assert!(store.metrics().snapshot().disk_reads > 0);
    }

    #[test]
    fn oversized_values_are_rejected() {
        let store = BtreeStore::open(
            StoreConfig::in_memory()
                .with_memory_budget(64 << 10)
                .with_page_size(1 << 10),
        )
        .unwrap();
        assert!(store.put(1, &[0u8; 2048]).is_err());
    }

    #[test]
    fn rmw_roundtrip() {
        let store = BtreeStore::in_memory(1 << 20).unwrap();
        for _ in 0..5 {
            store
                .rmw(1, &|old| {
                    let cur = old
                        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                        .unwrap_or(0);
                    (cur + 2).to_le_bytes().to_vec()
                })
                .unwrap();
        }
        assert_eq!(
            u64::from_le_bytes(store.get(1).unwrap().try_into().unwrap()),
            10
        );
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "mlkv-btree-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(64 << 10)
            .with_page_size(4 << 10);
        {
            let store = BtreeStore::open(cfg.clone()).unwrap();
            for k in 0..2000u64 {
                store.put(k, &k.to_le_bytes()).unwrap();
            }
            store.delete(3).unwrap();
            store.flush().unwrap();
        }
        let store = BtreeStore::open(cfg).unwrap();
        assert_eq!(store.get(1999).unwrap(), 1999u64.to_le_bytes());
        assert_eq!(store.get(0).unwrap(), 0u64.to_le_bytes());
        assert!(store.get(3).unwrap_err().is_not_found());
        assert_eq!(store.approximate_len(), 1999);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mlkv-btree-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn journaled_writes_survive_reopen_without_flush() {
        let dir = temp_dir("reopen");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_durability(DurabilityMode::GroupCommit { window: 64 });
        {
            let store = BtreeStore::open(cfg.clone()).unwrap();
            // Enough inserts to split leaves (routing changes must replay too).
            for k in 0..300u64 {
                store.put(k, &[(k % 251) as u8; 32]).unwrap();
            }
            store.delete(5).unwrap();
            // No flush: the journal is the only durable copy.
        }
        let store = BtreeStore::open(cfg).unwrap();
        assert!(store.leaf_count() > 1, "splits must survive");
        assert_eq!(store.approximate_len(), 299);
        assert!(store.get(5).unwrap_err().is_not_found());
        for k in (0..300u64).filter(|&k| k != 5) {
            assert_eq!(store.get(k).unwrap(), vec![(k % 251) as u8; 32], "key {k}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_rotates_the_journal_generation() {
        let dir = temp_dir("rotate");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_durability(DurabilityMode::GroupCommit { window: 64 });
        let store = BtreeStore::open(cfg.clone()).unwrap();
        for k in 0..100u64 {
            store.put(k, &[1u8; 32]).unwrap();
        }
        assert_eq!(journal_generations(&dir), vec![0]);
        store.flush().unwrap();
        assert_eq!(journal_generations(&dir), vec![1], "flush supersedes gen 0");
        store.put(500, &[2u8; 32]).unwrap();
        drop(store);
        // Reopen recovers the flushed base plus the delta journal.
        let store = BtreeStore::open(cfg).unwrap();
        assert_eq!(store.approximate_len(), 101);
        assert_eq!(store.get(500).unwrap(), vec![2u8; 32]);
        assert_eq!(store.get(99).unwrap(), vec![1u8; 32]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batches_journal_one_group_per_ack() {
        let dir = temp_dir("group");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(64 << 10)
            .with_page_size(4 << 10)
            .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 });
        let store = BtreeStore::open(cfg).unwrap();
        let mut batch = mlkv_storage::WriteBatch::new();
        for k in 0..64u64 {
            batch.put(k, vec![k as u8; 16]);
        }
        store.write_batch(&batch).unwrap();
        let keys: Vec<u64> = (0..64).collect();
        store
            .multi_rmw(&keys, &|_, cur| {
                let mut v = cur.unwrap().to_vec();
                v[0] ^= 0xFF;
                v
            })
            .unwrap();
        let snap = store.metrics().snapshot();
        assert_eq!(snap.wal_appends, 2, "one grouped journal append per batch");
        assert_eq!(snap.wal_syncs, 2, "one sync per acknowledged batch");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_durable_store_writes_no_journal() {
        let dir = temp_dir("nojournal");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10);
        let store = BtreeStore::open(cfg).unwrap();
        store.put(1, &[1u8; 8]).unwrap();
        assert!(journal_generations(&dir).is_empty());
        assert_eq!(store.metrics().snapshot().wal_appends, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shipped_journal_groups_replicate_into_a_standby_tree() {
        let dir = temp_dir("repl");
        let tap = Arc::new(mlkv_storage::wal::WalTap::new(1024));
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 })
            .with_wal_tap(Arc::clone(&tap));
        let primary = BtreeStore::open(cfg).unwrap();
        assert!(
            primary
                .replication_tap()
                .is_some_and(|t| Arc::ptr_eq(&t, &tap)),
            "store exposes the configured tap"
        );
        // Replica attached at genesis: page-image groups carry full
        // post-images, so applying them in order reconstructs the tree.
        let replica = BtreeStore::in_memory(1 << 20).unwrap();
        // Enough keys to split leaves (meta records ship too), plus a delete.
        for k in 0..300u64 {
            primary.put(k, &[(k % 251) as u8; 16]).unwrap();
        }
        primary.delete(7).unwrap();
        let mut shipper = mlkv_storage::wal::WalShipper::new(Arc::clone(&tap), 0);
        loop {
            match shipper.next(std::time::Duration::from_millis(0)) {
                mlkv_storage::wal::Shipment::Group(group) => {
                    replica.apply_replicated_group(&group.frames).unwrap()
                }
                mlkv_storage::wal::Shipment::Idle => break,
                mlkv_storage::wal::Shipment::Gap { .. } => panic!("no eviction expected"),
            }
        }
        assert_eq!(replica.approximate_len(), primary.approximate_len());
        assert_eq!(replica.leaf_count(), primary.leaf_count());
        for k in 0..300u64 {
            if k == 7 {
                assert!(replica.get(k).unwrap_err().is_not_found());
            } else {
                assert_eq!(replica.get(k).unwrap(), vec![(k % 251) as u8; 16]);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let store = Arc::new(BtreeStore::in_memory(1 << 20).unwrap());
        for k in 0..200u64 {
            store.put(k, &k.to_le_bytes()).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    let key = 10_000 + t * 1000 + i;
                    store.put(key, &key.to_le_bytes()).unwrap();
                    assert_eq!(store.get(key).unwrap(), key.to_le_bytes());
                    assert_eq!(store.get(i % 200).unwrap(), (i % 200).to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
