//! Health-aware degradation: the server's `Serving → Degraded → Serving`
//! state machine (with a terminal `Draining` for shutdown).
//!
//! A write-path storage fault (device I/O error, corruption, failed
//! checkpoint) does not have to take the whole server down: gathers can keep
//! being answered from live state while mutations are refused with the
//! retryable [`StorageError::Unavailable`], carrying a `retry_after` hint for
//! the client's backoff. The batcher drives the machine:
//!
//! * a failed fused apply (or end-of-run flush) whose error
//!   [`is_write_fault`] flips the state to [`HealthState::Degraded`];
//! * while degraded, each tick first runs a **recovery probe** when one is
//!   due: a put to the reserved [`crate::dedup::PROBE_KEY`] followed by a
//!   table flush, exercising the real WAL-append/commit/sync path. A probe
//!   that succeeds flips back to [`HealthState::Serving`]; one that fails
//!   re-arms the probe timer;
//! * shutdown sets [`HealthState::Draining`], which no probe leaves.
//!
//! Transitions and probe attempts are counted in `StorageMetrics`
//! (`health_degraded`, `health_recovered`, `health_probes`) and the current
//! state is exported as the `health_state` gauge.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mlkv::EmbeddingTable;
use mlkv_storage::{StorageError, StorageMetrics};

use crate::dedup::PROBE_KEY;

/// The server's health state (the `health_state` gauge uses these values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthState {
    /// Fully serving: reads and writes admitted.
    Serving = 0,
    /// Read-only after a write-path fault: gathers flow, mutations are
    /// refused with [`StorageError::Unavailable`] until a probe succeeds.
    Degraded = 1,
    /// Shutting down; terminal.
    Draining = 2,
}

/// The server's replication role (the `repl_role` gauge uses these values).
///
/// Orthogonal to [`HealthState`]: a replica can itself be serving, degraded,
/// or draining. A [`Role::Replica`] answers gathers from replicated state but
/// refuses client mutations with [`StorageError::Unavailable`] — its writes
/// arrive only over the replication stream — until
/// [`crate::ServerHandle::promote`] flips it to [`Role::Primary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Role {
    /// Accepts client mutations and ships its WAL to attached replicas.
    Primary = 0,
    /// Applies the primary's WAL stream; read-only for clients.
    Replica = 1,
}

/// True for errors that indicate the write path itself is unhealthy (as
/// opposed to a bad request): device I/O failures, detected corruption, and
/// failed checkpoints.
pub fn is_write_fault(err: &StorageError) -> bool {
    matches!(
        err,
        StorageError::Io(_) | StorageError::Corruption(_) | StorageError::Checkpoint(_)
    )
}

/// Shared health machine. Cheap to read from any thread (one atomic load);
/// transitions happen on the batcher thread.
pub struct Health {
    state: AtomicU8,
    role: AtomicU8,
    retry_after_ms: u64,
    probe_interval: Duration,
    /// When the last probe ran (`None` = never, so the first is always due).
    last_probe: Mutex<Option<Instant>>,
    probe_counter: AtomicU64,
    metrics: Arc<StorageMetrics>,
}

impl Health {
    /// A health machine starting at [`HealthState::Serving`].
    ///
    /// `retry_after_ms` is the backoff hint carried in `Unavailable` errors;
    /// `probe_interval` spaces recovery probes (zero = probe every tick —
    /// what deterministic tests want).
    pub fn new(
        retry_after_ms: u64,
        probe_interval: Duration,
        metrics: Arc<StorageMetrics>,
    ) -> Self {
        metrics.set_health_state(HealthState::Serving as u64);
        metrics.set_repl_role(Role::Primary as u64);
        Self {
            state: AtomicU8::new(HealthState::Serving as u8),
            role: AtomicU8::new(Role::Primary as u8),
            retry_after_ms,
            probe_interval,
            last_probe: Mutex::new(None),
            probe_counter: AtomicU64::new(0),
            metrics,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        match self.state.load(Ordering::SeqCst) {
            0 => HealthState::Serving,
            1 => HealthState::Degraded,
            _ => HealthState::Draining,
        }
    }

    /// Current replication role.
    pub fn role(&self) -> Role {
        match self.role.load(Ordering::SeqCst) {
            0 => Role::Primary,
            _ => Role::Replica,
        }
    }

    /// Change the replication role (replica attach at startup, promotion at
    /// failover) and export it on the `repl_role` gauge.
    pub fn set_role(&self, role: Role) {
        self.role.store(role as u8, Ordering::SeqCst);
        self.metrics.set_repl_role(role as u64);
    }

    /// The typed error mutations receive while degraded.
    pub fn unavailable_error(&self) -> StorageError {
        StorageError::Unavailable {
            retry_after_ms: self.retry_after_ms,
        }
    }

    /// React to a fused-write failure: a write fault degrades the server
    /// (unless it is already draining). Returns true when this call caused
    /// the `Serving → Degraded` transition.
    pub fn on_write_error(&self, err: &StorageError) -> bool {
        if !is_write_fault(err) {
            return false;
        }
        let flipped = self
            .state
            .compare_exchange(
                HealthState::Serving as u8,
                HealthState::Degraded as u8,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok();
        if flipped {
            self.metrics.record_health_degraded();
            self.metrics.set_health_state(HealthState::Degraded as u64);
            // Make the next tick probe immediately: the fault just happened,
            // and tests with interval 0 rely on probe-per-tick anyway.
            *self.last_probe.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        flipped
    }

    /// True when the server is degraded and the probe spacing has elapsed.
    pub fn probe_due(&self) -> bool {
        if self.state() != HealthState::Degraded {
            return false;
        }
        let last = self.last_probe.lock().unwrap_or_else(|e| e.into_inner());
        match *last {
            None => true,
            Some(at) => at.elapsed() >= self.probe_interval,
        }
    }

    /// Run one recovery probe against `table`: write the reserved probe key
    /// through the store's normal put path, then flush. Success proves the
    /// WAL-append/commit/sync path works again *and* hardens everything the
    /// degraded period acknowledged from the dedup window, so the flip back
    /// to `Serving` never resurrects an un-durable acknowledgement. Returns
    /// true when the probe recovered the server.
    pub fn run_probe(&self, table: &EmbeddingTable) -> bool {
        if self.state() != HealthState::Degraded {
            return false;
        }
        *self.last_probe.lock().unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
        self.metrics.record_health_probe();
        let stamp = self.probe_counter.fetch_add(1, Ordering::SeqCst);
        let probe = table
            .store()
            .put(PROBE_KEY, &stamp.to_le_bytes())
            .and_then(|()| table.flush());
        if probe.is_err() {
            return false;
        }
        let recovered = self
            .state
            .compare_exchange(
                HealthState::Degraded as u8,
                HealthState::Serving as u8,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok();
        if recovered {
            self.metrics.record_health_recovered();
            self.metrics.set_health_state(HealthState::Serving as u64);
        }
        recovered
    }

    /// Enter the terminal draining state (shutdown).
    pub fn set_draining(&self) {
        self.state
            .store(HealthState::Draining as u8, Ordering::SeqCst);
        self.metrics.set_health_state(HealthState::Draining as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::StoreConfig;

    fn table() -> EmbeddingTable {
        let store = mlkv::open_store(mlkv::BackendKind::InMemory, StoreConfig::default()).unwrap();
        EmbeddingTable::builder(store)
            .dim(4)
            .seed(1)
            .build()
            .unwrap()
    }

    fn health(metrics: Arc<StorageMetrics>) -> Health {
        Health::new(25, Duration::ZERO, metrics)
    }

    #[test]
    fn write_fault_degrades_and_probe_recovers() {
        let t = table();
        let metrics = t.store().metrics();
        let h = health(Arc::clone(&metrics));
        assert_eq!(h.state(), HealthState::Serving);
        assert!(!h.probe_due(), "healthy servers do not probe");

        let io_err = StorageError::Io(std::io::Error::other("injected"));
        assert!(h.on_write_error(&io_err));
        assert!(
            !h.on_write_error(&io_err),
            "second fault is not a transition"
        );
        assert_eq!(h.state(), HealthState::Degraded);
        assert!(matches!(
            h.unavailable_error(),
            StorageError::Unavailable { retry_after_ms: 25 }
        ));

        assert!(h.probe_due());
        assert!(h.run_probe(&t), "healthy in-memory store recovers at once");
        assert_eq!(h.state(), HealthState::Serving);

        let snap = metrics.snapshot();
        assert_eq!(snap.health_degraded, 1);
        assert_eq!(snap.health_recovered, 1);
        assert_eq!(snap.health_probes, 1);
        assert_eq!(snap.health_state, HealthState::Serving as u64);
    }

    #[test]
    fn request_scoped_errors_do_not_degrade() {
        let t = table();
        let h = health(t.store().metrics());
        for err in [
            StorageError::KeyNotFound,
            StorageError::InvalidArgument("bad dim".into()),
            StorageError::Overloaded {
                depth: 1,
                capacity: 1,
            },
            StorageError::DeadlineExceeded { deadline_us: 5 },
        ] {
            assert!(!h.on_write_error(&err));
        }
        assert_eq!(h.state(), HealthState::Serving);
    }

    #[test]
    fn role_flips_are_tracked_on_the_gauge() {
        let t = table();
        let metrics = t.store().metrics();
        let h = health(Arc::clone(&metrics));
        assert_eq!(h.role(), Role::Primary);
        assert_eq!(metrics.snapshot().repl_role, Role::Primary as u64);
        h.set_role(Role::Replica);
        assert_eq!(h.role(), Role::Replica);
        assert_eq!(metrics.snapshot().repl_role, Role::Replica as u64);
        assert_eq!(h.state(), HealthState::Serving, "role is orthogonal");
        h.set_role(Role::Primary);
        assert_eq!(metrics.snapshot().repl_role, Role::Primary as u64);
    }

    #[test]
    fn draining_is_terminal() {
        let t = table();
        let h = health(t.store().metrics());
        h.on_write_error(&StorageError::Io(std::io::Error::other("x")));
        h.set_draining();
        assert_eq!(h.state(), HealthState::Draining);
        assert!(!h.probe_due());
        assert!(!h.run_probe(&t), "probes never leave draining");
        assert_eq!(h.state(), HealthState::Draining);
    }
}
