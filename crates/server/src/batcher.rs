//! The batcher: a single thread that turns the admission queue's per-request
//! work into fused storage calls.
//!
//! Each tick the batcher drains a micro-batch from the [`AdmissionQueue`],
//! drops work whose deadline expired while queued, fuses the remainder into as
//! few `EmbeddingTable::gather` / `apply_gradients` calls as possible
//! (contiguous runs of the same kind — this preserves per-connection
//! read-your-writes ordering across the batch), and scatters the results back
//! through each request's reply closure.
//!
//! The micro-batch window is sized by [`AdaptiveWindow`], the same ±1-step
//! clamp feedback loop the trainer uses for prefetch depth: grow while ticks
//! fill the window and leave a backlog (fusion is paying off), shrink when a
//! tick's latency overshoots the target (queueing delay is eating the
//! deadline budget).
//!
//! The batcher is also the single authoritative point for the fault-tolerance
//! machinery (it is the only thread that mutates the table, so there are no
//! races to reason about):
//!
//! * **Idempotent retries** — a mutation whose `(session_id, id)` the
//!   [`DedupWindow`] already acknowledged is re-acknowledged without being
//!   re-applied; fresh mutations ride their durable marker in the same fused
//!   batch ([`EmbeddingTable::apply_gradients_tagged`]).
//! * **In-doubt reconciliation** — when a fused apply fails, its sessions are
//!   marked in-doubt: on an apply-before-log engine the gradients may already
//!   be in live state even though the batch was NACKed. A retry from an
//!   in-doubt session checks the store-resident marker; if the failed attempt
//!   did land, the current live values are written back (log-before-apply,
//!   idempotent) instead of re-applied, so the gradient is never doubled.
//! * **Health-aware degradation** — write faults flip [`Health`] to
//!   `Degraded`; while degraded every tick first runs a recovery probe when
//!   due, gathers keep flowing, and mutations are refused with the retryable
//!   `Unavailable` error.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlkv::EmbeddingTable;
use mlkv_storage::{StorageError, StorageMetrics, WriteBatch};

use crate::dedup::{self, DedupWindow};
use crate::health::{Health, HealthState, Role};
use crate::protocol::{encode_error, ErrorCode, Response};
use crate::queue::{AdmissionQueue, Pending, Work};
use crate::repl::{ReplicationHub, ReplicationMode};

/// Feedback-sized micro-batch window (in requests per tick).
///
/// Mirrors the trainer's `AdaptiveLookahead`: one multiplicative step per
/// observation, clamped to `[1, max]`, so the window cannot oscillate wildly
/// on a single noisy tick.
#[derive(Debug)]
pub struct AdaptiveWindow {
    window: usize,
    max: usize,
    latency_target: Duration,
    adaptive: bool,
}

impl AdaptiveWindow {
    /// A window starting at `initial` requests, clamped to `[1, max]`.
    /// `adaptive = false` pins the window at `initial` (per-request dispatch
    /// when `initial == 1` — the benchmark's comparison baseline).
    pub fn new(initial: usize, max: usize, latency_target: Duration, adaptive: bool) -> Self {
        let max = max.max(1);
        Self {
            window: initial.clamp(1, max),
            max,
            latency_target,
            adaptive,
        }
    }

    /// The current window size in requests.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feed back one tick's observation: how many requests the tick drained,
    /// how many were still queued afterwards, and how long the fused storage
    /// calls took. Returns the window for the next tick.
    pub fn observe(&mut self, drained: usize, backlog: usize, tick_latency: Duration) -> usize {
        if !self.adaptive {
            return self.window;
        }
        if tick_latency > self.latency_target {
            // The fused call itself is too slow for the deadline budget:
            // smaller batches bound per-tick latency.
            self.window = (self.window / 2).max(1);
        } else if drained >= self.window && backlog > 0 {
            // Window filled and work is still waiting — wider fusion
            // amortises more per-key overhead without adding wait time.
            self.window = (self.window * 2).min(self.max);
        }
        self.window
    }
}

/// Configuration for the batcher loop.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Initial micro-batch window in requests.
    pub window_initial: usize,
    /// Upper clamp for the adaptive window.
    pub window_max: usize,
    /// How long a non-full window stays open waiting for more requests.
    pub window_wait: Duration,
    /// Tick latency above which the window shrinks.
    pub window_latency_target: Duration,
    /// `false` pins the window at `window_initial` (no feedback).
    pub adaptive: bool,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            window_initial: 16,
            window_max: 256,
            window_wait: Duration::from_micros(200),
            window_latency_target: Duration::from_millis(2),
            adaptive: true,
        }
    }
}

/// The batcher loop. Runs on its own thread until the queue closes and
/// drains; flushes the table before returning so graceful shutdown reaches
/// the WAL/fsync path.
pub struct Batcher {
    table: Arc<EmbeddingTable>,
    queue: Arc<AdmissionQueue>,
    metrics: Arc<StorageMetrics>,
    window: AdaptiveWindow,
    wait: Duration,
    health: Arc<Health>,
    dedup: Arc<DedupWindow>,
    /// Sessions whose last fused apply failed: live state may hold their
    /// mutation even though it was NACKed (apply-before-log engines), so a
    /// retry must consult the durable marker before re-applying.
    in_doubt: HashSet<u64>,
    /// Replication state for the semi-sync acknowledgement gate (`None`
    /// outside a served replication topology).
    repl: Option<Arc<ReplicationHub>>,
    repl_mode: ReplicationMode,
}

impl Batcher {
    /// Build a batcher over `table`, fed by `queue`, reporting into `metrics`.
    pub fn new(
        table: Arc<EmbeddingTable>,
        queue: Arc<AdmissionQueue>,
        metrics: Arc<StorageMetrics>,
        config: &BatcherConfig,
        health: Arc<Health>,
        dedup: Arc<DedupWindow>,
    ) -> Self {
        Self {
            table,
            queue,
            metrics,
            window: AdaptiveWindow::new(
                config.window_initial,
                config.window_max,
                config.window_latency_target,
                config.adaptive,
            ),
            wait: config.window_wait,
            health,
            dedup,
            in_doubt: HashSet::new(),
            repl: None,
            repl_mode: ReplicationMode::Async,
        }
    }

    /// Attach the replication hub and acknowledgement mode. Under
    /// [`ReplicationMode::SemiSync`] every fused apply waits for the quorum
    /// before acknowledging.
    pub fn with_replication(mut self, hub: Arc<ReplicationHub>, mode: ReplicationMode) -> Self {
        self.repl = Some(hub);
        self.repl_mode = mode;
        self
    }

    /// Run until the queue is closed and fully drained, then flush the table.
    /// The flush error (if any) is returned so the server can surface it.
    pub fn run(mut self) -> Result<(), StorageError> {
        while let Some((batch, backlog)) = self.queue.next_batch(self.window.window(), self.wait) {
            self.tick(batch, backlog);
        }
        self.table.flush()
    }

    /// Process one drained micro-batch. Public for deterministic unit tests
    /// (construct a queue, enqueue, call `tick` directly — no threads).
    pub fn tick(&mut self, batch: Vec<Pending>, backlog: usize) {
        // Recovery first: while degraded, any traffic (gathers, retried
        // applies) drives probes, so the server cannot get stuck read-only
        // with no one to heal it.
        if self.health.probe_due() {
            self.health.run_probe(&self.table);
        }
        let started = Instant::now();
        let now = started;
        let drained = batch.len();
        let mut fused_keys = 0u64;

        // Drop work that expired while queued, then fuse contiguous runs of
        // the same kind. Runs (not a global sort) keep each connection's
        // gather-after-apply ordering intact.
        let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
        for p in batch {
            if p.expired(now) {
                self.metrics.record_serve_rejected();
                let deadline_us = p.deadline_us;
                (p.reply)(Response::Error {
                    id: p.id,
                    code: ErrorCode::DeadlineExceeded,
                    message: StorageError::DeadlineExceeded { deadline_us }.to_string(),
                });
            } else {
                live.push(p);
            }
        }

        while !live.is_empty() {
            let end = run_end(&live, 0);
            let run: Vec<Pending> = live.drain(..end).collect();
            fused_keys += self.execute_run(run) as u64;
        }

        let tick_latency = started.elapsed();
        self.metrics
            .record_serve_tick(fused_keys, backlog as u64, self.window.window() as u64);
        self.window.observe(drained, backlog, tick_latency);
    }

    /// Execute one same-kind run as a single fused storage call and scatter
    /// results back. Returns the number of keys fused.
    fn execute_run(&mut self, run: Vec<Pending>) -> usize {
        if run.is_empty() {
            return 0;
        }
        match &run[0].work {
            Work::Gather { .. } => self.execute_gather_run(run),
            Work::Apply { .. } => self.execute_apply_run(run),
        }
    }

    fn execute_gather_run(&self, run: Vec<Pending>) -> usize {
        let mut all_keys: Vec<u64> = Vec::new();
        let mut spans: Vec<usize> = Vec::with_capacity(run.len());
        for p in &run {
            let Work::Gather { keys } = &p.work else {
                unreachable!("gather run contains only gathers");
            };
            spans.push(keys.len());
            all_keys.extend_from_slice(keys);
        }
        let fused = all_keys.len();
        match self.table.gather(&all_keys) {
            Ok(rows) => {
                let dim = self.table.dim() as u32;
                let mut offset = 0;
                for (p, span) in run.into_iter().zip(spans) {
                    let slice = rows[offset..offset + span].to_vec();
                    offset += span;
                    (p.reply)(Response::Rows {
                        id: p.id,
                        dim,
                        rows: slice,
                    });
                }
            }
            Err(err) => self.fail_run(run, &err),
        }
        fused
    }

    fn execute_apply_run(&mut self, run: Vec<Pending>) -> usize {
        let lr = match &run[0].work {
            Work::Apply { lr, .. } => *lr,
            Work::Gather { .. } => unreachable!("apply run contains only applies"),
        };

        // Split the run: already-acknowledged retries are answered from the
        // dedup window; in-run duplicates ride the fused call's outcome
        // without contributing gradients twice; everything else is fresh.
        let mut fresh: Vec<Pending> = Vec::new();
        let mut riders: Vec<Pending> = Vec::new();
        let mut in_run: HashSet<(u64, u64)> = HashSet::new();
        let mut rejected: Vec<Pending> = Vec::new();
        for p in run {
            if p.session_id != 0 && self.dedup.already_acked(p.session_id, p.id) {
                self.metrics.record_serve_deduped();
                (p.reply)(Response::Applied { id: p.id });
            } else if self.health.state() != HealthState::Serving
                || self.health.role() == Role::Replica
            {
                // Degraded (or draining): refuse the mutation with the
                // retryable hint. The probe at the top of the tick is what
                // eventually lets these through. A replica refuses client
                // mutations the same retryable way — its writes arrive over
                // the replication stream — so a client that reached it before
                // promotion just backs off and retries into the promotion.
                rejected.push(p);
            } else if p.session_id != 0 && !in_run.insert((p.session_id, p.id)) {
                riders.push(p);
            } else if p.session_id != 0 && self.in_doubt.contains(&p.session_id) {
                match self.reconcile(&p) {
                    Ok(true) => {
                        // The NACKed attempt did land in live state; it is
                        // now durable too. Acknowledge without re-applying.
                        self.in_doubt.remove(&p.session_id);
                        self.dedup.record(p.session_id, p.id);
                        self.metrics.record_serve_deduped();
                        (p.reply)(Response::Applied { id: p.id });
                    }
                    Ok(false) => {
                        // No trace of the failed attempt: plain re-apply.
                        self.in_doubt.remove(&p.session_id);
                        fresh.push(p);
                    }
                    Err(err) => {
                        self.health.on_write_error(&err);
                        self.fail_run(vec![p], &err);
                    }
                }
            } else {
                fresh.push(p);
            }
        }
        if !rejected.is_empty() {
            let err = match self.health.state() {
                HealthState::Draining => StorageError::Closed,
                _ => self.health.unavailable_error(),
            };
            self.fail_run(rejected, &err);
        }
        if fresh.is_empty() {
            self.fail_run(riders, &StorageError::Unavailable { retry_after_ms: 0 });
            return 0;
        }

        let mut fused: Vec<(u64, &[f32])> = Vec::new();
        for p in &fresh {
            let Work::Apply { updates, .. } = &p.work else {
                unreachable!("apply run contains only applies");
            };
            for (key, grad) in updates {
                fused.push((*key, grad.as_slice()));
            }
        }
        // One durable marker per session, covering its highest id in the run;
        // it rides the same fused batch, so it is durable iff the batch is.
        let mut session_high: Vec<(u64, u64)> = Vec::new();
        for p in &fresh {
            if p.session_id == 0 {
                continue;
            }
            match session_high.iter_mut().find(|(s, _)| *s == p.session_id) {
                Some((_, high)) => *high = (*high).max(p.id),
                None => session_high.push((p.session_id, p.id)),
            }
        }
        let tags: Vec<(u64, Vec<u8>)> = session_high
            .iter()
            .map(|(s, id)| self.dedup.marker_tag(*s, *id))
            .collect();

        let count = fused.len();
        match self.table.apply_gradients_tagged(&fused, lr, &tags) {
            Ok(()) => {
                drop(fused);
                if let Err(err) = self.replication_barrier() {
                    // Locally durable but the replica quorum did not confirm
                    // in time: acknowledging now could lose the mutation to a
                    // failover, so NACK retryably. The marker *is* durable
                    // (and shipped with the batch), so the sessions go
                    // in-doubt and their retries reconcile through it —
                    // exactly once, never doubled — whether they land back
                    // here or on a promoted replica.
                    for p in &fresh {
                        if p.session_id != 0 {
                            self.in_doubt.insert(p.session_id);
                        }
                    }
                    self.fail_run(fresh, &err);
                    self.fail_run(riders, &err);
                    return count;
                }
                for p in fresh {
                    if p.session_id != 0 {
                        self.dedup.record(p.session_id, p.id);
                    }
                    (p.reply)(Response::Applied { id: p.id });
                }
                for p in riders {
                    self.metrics.record_serve_deduped();
                    (p.reply)(Response::Applied { id: p.id });
                }
            }
            Err(err) => {
                drop(fused);
                // Live state may hold this batch even though it failed
                // (apply-before-log engines): remember the sessions so their
                // retries reconcile against the durable marker.
                for p in &fresh {
                    if p.session_id != 0 {
                        self.in_doubt.insert(p.session_id);
                    }
                }
                self.health.on_write_error(&err);
                self.fail_run(fresh, &err);
                self.fail_run(riders, &err);
            }
        }
        count
    }

    /// The semi-sync acknowledgement gate: wait until the configured number
    /// of replicas have acked the WAL tail the fused apply just produced.
    /// `Async` mode (or no hub) passes immediately. A quorum timeout is a
    /// retryable refusal, not a health event — the local write path is fine.
    fn replication_barrier(&self) -> Result<(), StorageError> {
        let (Some(hub), ReplicationMode::SemiSync { acks }) = (&self.repl, self.repl_mode) else {
            return Ok(());
        };
        let target = hub.tail();
        if hub.wait_for_acks(target, acks, hub.ack_timeout()) {
            Ok(())
        } else {
            Err(StorageError::Unavailable {
                retry_after_ms: hub.retry_hint_ms(),
            })
        }
    }

    /// Decide whether an in-doubt session's NACKed attempt actually landed in
    /// live state, and if so make durable state match it. Returns `Ok(true)`
    /// when `p` is now safely acknowledgeable without re-applying.
    ///
    /// The durable marker is read from the store (live state): if it covers
    /// `p.id`, the failed fused batch *did* mutate live state before its WAL
    /// append failed. Re-applying would double the gradient, so instead the
    /// touched keys' current live values are written back together with the
    /// marker as one `write_batch` — a log-before-apply, idempotent path —
    /// which makes the durable image equal to live state, exactly once.
    fn reconcile(&self, p: &Pending) -> Result<bool, StorageError> {
        let store = self.table.store();
        let slot_key = self.dedup.slot_key(p.session_id);
        let marker = match store.multi_get(&[slot_key]).pop() {
            Some(Ok(value)) => dedup::decode_marker(&value),
            Some(Err(err)) if err.is_not_found() => None,
            Some(Err(err)) => return Err(err),
            None => None,
        };
        let Some((session, last)) = marker else {
            return Ok(false);
        };
        if session != p.session_id || p.id > last {
            return Ok(false);
        }
        let Work::Apply { updates, .. } = &p.work else {
            return Ok(false);
        };
        let keys: Vec<u64> = updates.iter().map(|(k, _)| *k).collect();
        let mut batch = WriteBatch::new();
        for (key, result) in keys.iter().zip(store.multi_get(&keys)) {
            match result {
                Ok(value) => batch.put(*key, value),
                Err(err) if err.is_not_found() => {}
                Err(err) => return Err(err),
            }
        }
        batch.put(slot_key, dedup::encode_marker(session, last));
        store.write_batch(&batch)?;
        Ok(true)
    }

    /// A storage failure fans out to every request that rode the fused call.
    fn fail_run(&self, run: Vec<Pending>, err: &StorageError) {
        let (code, message) = encode_error(err);
        for p in run {
            self.metrics.record_serve_rejected();
            (p.reply)(Response::Error {
                id: p.id,
                code,
                message: message.clone(),
            });
        }
    }
}

/// End (exclusive) of the maximal fusable run starting at `start`: same work
/// kind, and for applies the same learning-rate bit pattern (one fused
/// `apply_gradients` call carries exactly one `lr`).
fn run_end(live: &[Pending], start: usize) -> usize {
    let mut end = start + 1;
    match &live[start].work {
        Work::Gather { .. } => {
            while end < live.len() && matches!(live[end].work, Work::Gather { .. }) {
                end += 1;
            }
        }
        Work::Apply { lr, .. } => {
            let bits = lr.to_bits();
            while end < live.len() {
                match &live[end].work {
                    Work::Apply { lr, .. } if lr.to_bits() == bits => end += 1,
                    _ => break,
                }
            }
        }
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::config::StoreConfig;
    use std::sync::mpsc;

    fn test_table(dim: usize) -> Arc<EmbeddingTable> {
        let store = mlkv::open_store(mlkv::BackendKind::InMemory, StoreConfig::default()).unwrap();
        Arc::new(
            EmbeddingTable::builder(store)
                .dim(dim)
                .seed(7)
                .build()
                .unwrap(),
        )
    }

    fn batcher(table: &Arc<EmbeddingTable>, queue: &Arc<AdmissionQueue>) -> Batcher {
        let metrics = table.store().metrics();
        Batcher::new(
            Arc::clone(table),
            Arc::clone(queue),
            Arc::clone(&metrics),
            &BatcherConfig::default(),
            Arc::new(Health::new(25, Duration::ZERO, metrics)),
            Arc::new(DedupWindow::new(64)),
        )
    }

    fn gather_pending(id: u64, keys: Vec<u64>) -> (Pending, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                id,
                session_id: 0,
                deadline_us: 0,
                deadline: None,
                work: Work::Gather { keys },
                reply: Box::new(move |r| {
                    let _ = tx.send(r);
                }),
            },
            rx,
        )
    }

    fn apply_pending(
        id: u64,
        lr: f32,
        updates: Vec<(u64, Vec<f32>)>,
    ) -> (Pending, mpsc::Receiver<Response>) {
        session_apply_pending(0, id, lr, updates)
    }

    fn session_apply_pending(
        session_id: u64,
        id: u64,
        lr: f32,
        updates: Vec<(u64, Vec<f32>)>,
    ) -> (Pending, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                id,
                session_id,
                deadline_us: 0,
                deadline: None,
                work: Work::Apply { lr, updates },
                reply: Box::new(move |r| {
                    let _ = tx.send(r);
                }),
            },
            rx,
        )
    }

    #[test]
    fn eight_clients_fuse_at_least_sixteen_keys_per_tick() {
        // The acceptance bar from the issue: ≥ 8 concurrent clients, a
        // batcher window fusing ≥ 16 keys per engine tick. Deterministic
        // version: 8 queued gathers × 4 keys = one 32-key fused tick.
        let table = test_table(8);
        let metrics = table.store().metrics();
        let queue = Arc::new(AdmissionQueue::new(64));
        let mut rxs = Vec::new();
        for client in 0..8u64 {
            let keys: Vec<u64> = (0..4).map(|k| client * 100 + k).collect();
            let (p, rx) = gather_pending(client, keys);
            queue.offer(p).unwrap();
            rxs.push(rx);
        }
        let mut b = batcher(&table, &queue);
        let (batch, backlog) = queue.next_batch(64, Duration::ZERO).unwrap();
        b.tick(batch, backlog);

        let snap = metrics.snapshot();
        assert_eq!(snap.serve_ticks, 1);
        assert!(
            snap.serve_fused_keys >= 16,
            "one tick fused {} keys, want ≥ 16",
            snap.serve_fused_keys
        );
        for rx in rxs {
            match rx.try_recv().unwrap() {
                Response::Rows { rows, dim, .. } => {
                    assert_eq!(rows.len(), 4);
                    assert_eq!(dim, 8);
                }
                other => panic!("expected rows, got {other:?}"),
            }
        }
    }

    #[test]
    fn mixed_batch_preserves_order_and_scatters_correct_rows() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        // apply(k=5, +1) then gather(k=5) in the same batch: the gather must
        // observe the update (runs execute in admission order).
        let (a, arx) = apply_pending(1, 1.0, vec![(5, vec![1.0; 4])]);
        let (g, grx) = gather_pending(2, vec![5]);
        let before = table.get_one(5).unwrap();
        queue.offer(a).unwrap();
        queue.offer(g).unwrap();
        let mut b = batcher(&table, &queue);
        let (batch, backlog) = queue.next_batch(64, Duration::ZERO).unwrap();
        b.tick(batch, backlog);
        assert!(matches!(
            arx.try_recv().unwrap(),
            Response::Applied { id: 1 }
        ));
        match grx.try_recv().unwrap() {
            Response::Rows { rows, .. } => {
                // apply_gradients subtracts lr * grad.
                for (i, v) in rows[0].iter().enumerate() {
                    assert!(
                        (v - (before[i] - 1.0)).abs() < 1e-6,
                        "gather after apply in one batch must see the update"
                    );
                }
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn queued_expiry_rejects_with_typed_error_and_counts_rejection() {
        let table = test_table(4);
        let metrics = table.store().metrics();
        let queue = Arc::new(AdmissionQueue::new(64));
        let (mut p, rx) = gather_pending(9, vec![1]);
        p.deadline_us = 250;
        p.deadline = Some(Instant::now() - Duration::from_millis(1));
        // Admission happened before expiry in this scenario; simulate by
        // ticking directly with an already-expired entry.
        let mut b = batcher(&table, &queue);
        b.tick(vec![p], 0);
        match rx.try_recv().unwrap() {
            Response::Error { id, code, message } => {
                assert_eq!(id, 9);
                assert_eq!(code, ErrorCode::DeadlineExceeded);
                assert!(message.contains("250"), "typed message carries the budget");
            }
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(metrics.snapshot().serve_rejected, 1);
    }

    #[test]
    fn applies_with_different_lr_split_into_separate_runs() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        let (a1, r1) = apply_pending(1, 0.5, vec![(1, vec![1.0; 4])]);
        let (a2, r2) = apply_pending(2, 0.25, vec![(1, vec![1.0; 4])]);
        let before = table.get_one(1).unwrap();
        for p in [a1, a2] {
            queue.offer(p).unwrap();
        }
        let mut b = batcher(&table, &queue);
        let (batch, backlog) = queue.next_batch(64, Duration::ZERO).unwrap();
        b.tick(batch, backlog);
        assert!(matches!(r1.try_recv().unwrap(), Response::Applied { .. }));
        assert!(matches!(r2.try_recv().unwrap(), Response::Applied { .. }));
        let after = table.get_one(1).unwrap();
        assert!(
            (after[0] - (before[0] - 0.75)).abs() < 1e-6,
            "both updates applied with their own lr"
        );
    }

    #[test]
    fn adaptive_window_grows_on_backlog_and_shrinks_on_slow_ticks() {
        let mut w = AdaptiveWindow::new(16, 256, Duration::from_millis(2), true);
        // Full window + backlog → grow.
        assert_eq!(w.observe(16, 10, Duration::from_micros(100)), 32);
        assert_eq!(w.observe(32, 10, Duration::from_micros(100)), 64);
        // Latency overshoot → halve, even with backlog.
        assert_eq!(w.observe(64, 10, Duration::from_millis(5)), 32);
        // Partial drain, no backlog → hold.
        assert_eq!(w.observe(3, 0, Duration::from_micros(100)), 32);
        // Clamp at max.
        let mut w = AdaptiveWindow::new(200, 256, Duration::from_millis(2), true);
        assert_eq!(w.observe(200, 1, Duration::ZERO), 256);
        assert_eq!(w.observe(256, 1, Duration::ZERO), 256);
        // Clamp at 1 and fixed mode.
        let mut w = AdaptiveWindow::new(1, 256, Duration::from_nanos(1), true);
        assert_eq!(w.observe(1, 0, Duration::from_secs(1)), 1);
        let mut w = AdaptiveWindow::new(8, 256, Duration::from_millis(2), false);
        assert_eq!(
            w.observe(8, 99, Duration::from_secs(9)),
            8,
            "fixed mode never moves"
        );
    }

    #[test]
    fn retried_apply_is_acked_from_the_window_not_reapplied() {
        let table = test_table(4);
        let metrics = table.store().metrics();
        let queue = Arc::new(AdmissionQueue::new(64));
        let mut b = batcher(&table, &queue);
        let before = table.get_one(9).unwrap();

        let (first, r1) = session_apply_pending(7, 1, 1.0, vec![(9, vec![1.0; 4])]);
        b.tick(vec![first], 0);
        assert!(matches!(
            r1.try_recv().unwrap(),
            Response::Applied { id: 1 }
        ));

        // The "ack was lost" retry: same session, same id.
        let (retry, r2) = session_apply_pending(7, 1, 1.0, vec![(9, vec![1.0; 4])]);
        b.tick(vec![retry], 0);
        assert!(matches!(
            r2.try_recv().unwrap(),
            Response::Applied { id: 1 }
        ));

        let after = table.get_one(9).unwrap();
        assert!(
            (after[0] - (before[0] - 1.0)).abs() < 1e-6,
            "gradient applied exactly once across the retry"
        );
        assert_eq!(metrics.snapshot().serve_deduped, 1);
        // The durable marker rode the fused batch.
        let marker = table
            .store()
            .multi_get(&[b.dedup.slot_key(7)])
            .pop()
            .unwrap()
            .unwrap();
        assert_eq!(crate::dedup::decode_marker(&marker), Some((7, 1)));
    }

    #[test]
    fn in_run_duplicate_applies_once_but_acks_both() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        let mut b = batcher(&table, &queue);
        let before = table.get_one(3).unwrap();
        let (a, r1) = session_apply_pending(5, 2, 1.0, vec![(3, vec![1.0; 4])]);
        let (dup, r2) = session_apply_pending(5, 2, 1.0, vec![(3, vec![1.0; 4])]);
        b.tick(vec![a, dup], 0);
        assert!(matches!(
            r1.try_recv().unwrap(),
            Response::Applied { id: 2 }
        ));
        assert!(matches!(
            r2.try_recv().unwrap(),
            Response::Applied { id: 2 }
        ));
        let after = table.get_one(3).unwrap();
        assert!((after[0] - (before[0] - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn degraded_server_rejects_writes_serves_reads_and_recovers_by_probe() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        let mut b = batcher(&table, &queue);
        b.health
            .on_write_error(&StorageError::Io(std::io::Error::other("injected")));

        // In-memory store: the probe at the next tick heals immediately, so
        // pin the state by checking the rejection path via a direct run (no
        // probe) first.
        let (a, arx) = session_apply_pending(1, 1, 1.0, vec![(2, vec![1.0; 4])]);
        b.execute_apply_run(vec![a]);
        match arx.try_recv().unwrap() {
            Response::Error { code, message, .. } => {
                assert_eq!(code, ErrorCode::Unavailable);
                assert!(message.contains("retry after 25ms"), "{message}");
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }

        // Gathers keep flowing while degraded.
        let (g, grx) = gather_pending(2, vec![2]);
        b.execute_run(vec![g]);
        assert!(matches!(grx.try_recv().unwrap(), Response::Rows { .. }));

        // A tick probes and (store is healthy) returns to Serving.
        let (a2, a2rx) = session_apply_pending(1, 2, 1.0, vec![(2, vec![1.0; 4])]);
        b.tick(vec![a2], 0);
        assert!(matches!(
            a2rx.try_recv().unwrap(),
            Response::Applied { id: 2 }
        ));
        assert_eq!(b.health.state(), HealthState::Serving);
        let snap = table.store().metrics().snapshot();
        assert_eq!(snap.health_degraded, 1);
        assert_eq!(snap.health_recovered, 1);
    }

    #[test]
    fn replica_role_rejects_applies_but_serves_gathers() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        let mut b = batcher(&table, &queue);
        b.health.set_role(Role::Replica);

        let (a, arx) = session_apply_pending(3, 1, 1.0, vec![(2, vec![1.0; 4])]);
        b.tick(vec![a], 0);
        match arx.try_recv().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Unavailable),
            other => panic!("expected Unavailable, got {other:?}"),
        }

        // Gathers keep flowing (a different key: under BSP a second Get on
        // the same key would wait for a Put that the rejected apply never
        // made).
        let (g, grx) = gather_pending(2, vec![5]);
        b.tick(vec![g], 0);
        assert!(matches!(grx.try_recv().unwrap(), Response::Rows { .. }));

        // Promotion (role flip) lets the retry through, and it is the same
        // (session, id) — applied exactly once, not doubled.
        b.health.set_role(Role::Primary);
        let before = table.get_one(2).unwrap();
        let (retry, rrx) = session_apply_pending(3, 1, 1.0, vec![(2, vec![1.0; 4])]);
        b.tick(vec![retry], 0);
        assert!(matches!(
            rrx.try_recv().unwrap(),
            Response::Applied { id: 1 }
        ));
        let after = table.get_one(2).unwrap();
        assert!((after[0] - (before[0] - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn semisync_without_quorum_nacks_and_retry_reconciles_after_ack() {
        use mlkv_storage::ReplicationTuning;

        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        let hub = Arc::new(ReplicationHub::new(
            None,
            table.store().metrics(),
            ReplicationTuning {
                retention_groups: 16,
                ack_timeout_ms: 1,
                heartbeat_ms: 1,
            },
        ));
        let mut b = batcher(&table, &queue)
            .with_replication(Arc::clone(&hub), ReplicationMode::SemiSync { acks: 1 });
        let before = table.get_one(8).unwrap();

        // No replica attached: the apply lands locally (marker and all) but
        // the quorum times out, so the client gets a retryable NACK.
        let (a, arx) = session_apply_pending(11, 1, 1.0, vec![(8, vec![1.0; 4])]);
        b.tick(vec![a], 0);
        match arx.try_recv().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Unavailable),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        let mid = table.get_one(8).unwrap();
        assert!(
            (mid[0] - (before[0] - 1.0)).abs() < 1e-6,
            "mutation is locally applied despite the NACK"
        );

        // A replica attaches and acks: the retry reconciles through the
        // durable marker — acknowledged without re-applying. Compare raw
        // stored bytes (the dedup'd retry makes no Put, so a table Get here
        // would wait on the BSP staleness clock).
        let raw_mid = table.store().multi_get(&[8]).pop().unwrap().unwrap();
        let id = hub.register();
        hub.record_ack(id, u64::MAX);
        let (retry, rrx) = session_apply_pending(11, 1, 1.0, vec![(8, vec![1.0; 4])]);
        b.tick(vec![retry], 0);
        assert!(matches!(
            rrx.try_recv().unwrap(),
            Response::Applied { id: 1 }
        ));
        let raw_after = table.store().multi_get(&[8]).pop().unwrap().unwrap();
        assert_eq!(
            raw_mid, raw_after,
            "gradient applied exactly once across NACK and retry"
        );
    }

    #[test]
    fn run_loop_drains_after_close_and_flushes() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        let mut rxs = Vec::new();
        for id in 0..5 {
            let (p, rx) = gather_pending(id, vec![id]);
            queue.offer(p).unwrap();
            rxs.push(rx);
        }
        queue.close();
        let b = batcher(&table, &queue);
        b.run().unwrap();
        for rx in rxs {
            assert!(matches!(rx.try_recv().unwrap(), Response::Rows { .. }));
        }
    }
}
