//! The batcher: a single thread that turns the admission queue's per-request
//! work into fused storage calls.
//!
//! Each tick the batcher drains a micro-batch from the [`AdmissionQueue`],
//! drops work whose deadline expired while queued, fuses the remainder into as
//! few `EmbeddingTable::gather` / `apply_gradients` calls as possible
//! (contiguous runs of the same kind — this preserves per-connection
//! read-your-writes ordering across the batch), and scatters the results back
//! through each request's reply closure.
//!
//! The micro-batch window is sized by [`AdaptiveWindow`], the same ±1-step
//! clamp feedback loop the trainer uses for prefetch depth: grow while ticks
//! fill the window and leave a backlog (fusion is paying off), shrink when a
//! tick's latency overshoots the target (queueing delay is eating the
//! deadline budget).

use std::sync::Arc;
use std::time::{Duration, Instant};

use mlkv::EmbeddingTable;
use mlkv_storage::{StorageError, StorageMetrics};

use crate::protocol::{ErrorCode, Response};
use crate::queue::{AdmissionQueue, Pending, Work};

/// Feedback-sized micro-batch window (in requests per tick).
///
/// Mirrors the trainer's `AdaptiveLookahead`: one multiplicative step per
/// observation, clamped to `[1, max]`, so the window cannot oscillate wildly
/// on a single noisy tick.
#[derive(Debug)]
pub struct AdaptiveWindow {
    window: usize,
    max: usize,
    latency_target: Duration,
    adaptive: bool,
}

impl AdaptiveWindow {
    /// A window starting at `initial` requests, clamped to `[1, max]`.
    /// `adaptive = false` pins the window at `initial` (per-request dispatch
    /// when `initial == 1` — the benchmark's comparison baseline).
    pub fn new(initial: usize, max: usize, latency_target: Duration, adaptive: bool) -> Self {
        let max = max.max(1);
        Self {
            window: initial.clamp(1, max),
            max,
            latency_target,
            adaptive,
        }
    }

    /// The current window size in requests.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feed back one tick's observation: how many requests the tick drained,
    /// how many were still queued afterwards, and how long the fused storage
    /// calls took. Returns the window for the next tick.
    pub fn observe(&mut self, drained: usize, backlog: usize, tick_latency: Duration) -> usize {
        if !self.adaptive {
            return self.window;
        }
        if tick_latency > self.latency_target {
            // The fused call itself is too slow for the deadline budget:
            // smaller batches bound per-tick latency.
            self.window = (self.window / 2).max(1);
        } else if drained >= self.window && backlog > 0 {
            // Window filled and work is still waiting — wider fusion
            // amortises more per-key overhead without adding wait time.
            self.window = (self.window * 2).min(self.max);
        }
        self.window
    }
}

/// Configuration for the batcher loop.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Initial micro-batch window in requests.
    pub window_initial: usize,
    /// Upper clamp for the adaptive window.
    pub window_max: usize,
    /// How long a non-full window stays open waiting for more requests.
    pub window_wait: Duration,
    /// Tick latency above which the window shrinks.
    pub window_latency_target: Duration,
    /// `false` pins the window at `window_initial` (no feedback).
    pub adaptive: bool,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            window_initial: 16,
            window_max: 256,
            window_wait: Duration::from_micros(200),
            window_latency_target: Duration::from_millis(2),
            adaptive: true,
        }
    }
}

/// The batcher loop. Runs on its own thread until the queue closes and
/// drains; flushes the table before returning so graceful shutdown reaches
/// the WAL/fsync path.
pub struct Batcher {
    table: Arc<EmbeddingTable>,
    queue: Arc<AdmissionQueue>,
    metrics: Arc<StorageMetrics>,
    window: AdaptiveWindow,
    wait: Duration,
}

impl Batcher {
    /// Build a batcher over `table`, fed by `queue`, reporting into `metrics`.
    pub fn new(
        table: Arc<EmbeddingTable>,
        queue: Arc<AdmissionQueue>,
        metrics: Arc<StorageMetrics>,
        config: &BatcherConfig,
    ) -> Self {
        Self {
            table,
            queue,
            metrics,
            window: AdaptiveWindow::new(
                config.window_initial,
                config.window_max,
                config.window_latency_target,
                config.adaptive,
            ),
            wait: config.window_wait,
        }
    }

    /// Run until the queue is closed and fully drained, then flush the table.
    /// The flush error (if any) is returned so the server can surface it.
    pub fn run(mut self) -> Result<(), StorageError> {
        while let Some((batch, backlog)) = self.queue.next_batch(self.window.window(), self.wait) {
            self.tick(batch, backlog);
        }
        self.table.flush()
    }

    /// Process one drained micro-batch. Public for deterministic unit tests
    /// (construct a queue, enqueue, call `tick` directly — no threads).
    pub fn tick(&mut self, batch: Vec<Pending>, backlog: usize) {
        let started = Instant::now();
        let now = started;
        let drained = batch.len();
        let mut fused_keys = 0u64;

        // Drop work that expired while queued, then fuse contiguous runs of
        // the same kind. Runs (not a global sort) keep each connection's
        // gather-after-apply ordering intact.
        let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
        for p in batch {
            if p.expired(now) {
                self.metrics.record_serve_rejected();
                let deadline_us = p.deadline_us;
                (p.reply)(Response::Error {
                    id: p.id,
                    code: ErrorCode::DeadlineExceeded,
                    message: StorageError::DeadlineExceeded { deadline_us }.to_string(),
                });
            } else {
                live.push(p);
            }
        }

        while !live.is_empty() {
            let end = run_end(&live, 0);
            let run: Vec<Pending> = live.drain(..end).collect();
            fused_keys += self.execute_run(run) as u64;
        }

        let tick_latency = started.elapsed();
        self.metrics
            .record_serve_tick(fused_keys, backlog as u64, self.window.window() as u64);
        self.window.observe(drained, backlog, tick_latency);
    }

    /// Execute one same-kind run as a single fused storage call and scatter
    /// results back. Returns the number of keys fused.
    fn execute_run(&self, run: Vec<Pending>) -> usize {
        if run.is_empty() {
            return 0;
        }
        match &run[0].work {
            Work::Gather { .. } => self.execute_gather_run(run),
            Work::Apply { .. } => self.execute_apply_run(run),
        }
    }

    fn execute_gather_run(&self, run: Vec<Pending>) -> usize {
        let mut all_keys: Vec<u64> = Vec::new();
        let mut spans: Vec<usize> = Vec::with_capacity(run.len());
        for p in &run {
            let Work::Gather { keys } = &p.work else {
                unreachable!("gather run contains only gathers");
            };
            spans.push(keys.len());
            all_keys.extend_from_slice(keys);
        }
        let fused = all_keys.len();
        match self.table.gather(&all_keys) {
            Ok(rows) => {
                let dim = self.table.dim() as u32;
                let mut offset = 0;
                for (p, span) in run.into_iter().zip(spans) {
                    let slice = rows[offset..offset + span].to_vec();
                    offset += span;
                    (p.reply)(Response::Rows {
                        id: p.id,
                        dim,
                        rows: slice,
                    });
                }
            }
            Err(err) => self.fail_run(run, &err),
        }
        fused
    }

    fn execute_apply_run(&self, run: Vec<Pending>) -> usize {
        let lr = match &run[0].work {
            Work::Apply { lr, .. } => *lr,
            Work::Gather { .. } => unreachable!("apply run contains only applies"),
        };
        let mut fused: Vec<(u64, &[f32])> = Vec::new();
        for p in &run {
            let Work::Apply { updates, .. } = &p.work else {
                unreachable!("apply run contains only applies");
            };
            for (key, grad) in updates {
                fused.push((*key, grad.as_slice()));
            }
        }
        let count = fused.len();
        match self.table.apply_gradients(&fused, lr) {
            Ok(()) => {
                drop(fused);
                for p in run {
                    (p.reply)(Response::Applied { id: p.id });
                }
            }
            Err(err) => {
                drop(fused);
                self.fail_run(run, &err);
            }
        }
        count
    }

    /// A storage failure fans out to every request that rode the fused call.
    fn fail_run(&self, run: Vec<Pending>, err: &StorageError) {
        let message = err.to_string();
        for p in run {
            self.metrics.record_serve_rejected();
            (p.reply)(Response::Error {
                id: p.id,
                code: ErrorCode::Storage,
                message: message.clone(),
            });
        }
    }
}

/// End (exclusive) of the maximal fusable run starting at `start`: same work
/// kind, and for applies the same learning-rate bit pattern (one fused
/// `apply_gradients` call carries exactly one `lr`).
fn run_end(live: &[Pending], start: usize) -> usize {
    let mut end = start + 1;
    match &live[start].work {
        Work::Gather { .. } => {
            while end < live.len() && matches!(live[end].work, Work::Gather { .. }) {
                end += 1;
            }
        }
        Work::Apply { lr, .. } => {
            let bits = lr.to_bits();
            while end < live.len() {
                match &live[end].work {
                    Work::Apply { lr, .. } if lr.to_bits() == bits => end += 1,
                    _ => break,
                }
            }
        }
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::config::StoreConfig;
    use std::sync::mpsc;

    fn test_table(dim: usize) -> Arc<EmbeddingTable> {
        let store = mlkv::open_store(mlkv::BackendKind::InMemory, StoreConfig::default()).unwrap();
        Arc::new(
            EmbeddingTable::builder(store)
                .dim(dim)
                .seed(7)
                .build()
                .unwrap(),
        )
    }

    fn batcher(table: &Arc<EmbeddingTable>, queue: &Arc<AdmissionQueue>) -> Batcher {
        Batcher::new(
            Arc::clone(table),
            Arc::clone(queue),
            table.store().metrics(),
            &BatcherConfig::default(),
        )
    }

    fn gather_pending(id: u64, keys: Vec<u64>) -> (Pending, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                id,
                deadline_us: 0,
                deadline: None,
                work: Work::Gather { keys },
                reply: Box::new(move |r| {
                    let _ = tx.send(r);
                }),
            },
            rx,
        )
    }

    fn apply_pending(
        id: u64,
        lr: f32,
        updates: Vec<(u64, Vec<f32>)>,
    ) -> (Pending, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                id,
                deadline_us: 0,
                deadline: None,
                work: Work::Apply { lr, updates },
                reply: Box::new(move |r| {
                    let _ = tx.send(r);
                }),
            },
            rx,
        )
    }

    #[test]
    fn eight_clients_fuse_at_least_sixteen_keys_per_tick() {
        // The acceptance bar from the issue: ≥ 8 concurrent clients, a
        // batcher window fusing ≥ 16 keys per engine tick. Deterministic
        // version: 8 queued gathers × 4 keys = one 32-key fused tick.
        let table = test_table(8);
        let metrics = table.store().metrics();
        let queue = Arc::new(AdmissionQueue::new(64));
        let mut rxs = Vec::new();
        for client in 0..8u64 {
            let keys: Vec<u64> = (0..4).map(|k| client * 100 + k).collect();
            let (p, rx) = gather_pending(client, keys);
            queue.offer(p).unwrap();
            rxs.push(rx);
        }
        let mut b = batcher(&table, &queue);
        let (batch, backlog) = queue.next_batch(64, Duration::ZERO).unwrap();
        b.tick(batch, backlog);

        let snap = metrics.snapshot();
        assert_eq!(snap.serve_ticks, 1);
        assert!(
            snap.serve_fused_keys >= 16,
            "one tick fused {} keys, want ≥ 16",
            snap.serve_fused_keys
        );
        for rx in rxs {
            match rx.try_recv().unwrap() {
                Response::Rows { rows, dim, .. } => {
                    assert_eq!(rows.len(), 4);
                    assert_eq!(dim, 8);
                }
                other => panic!("expected rows, got {other:?}"),
            }
        }
    }

    #[test]
    fn mixed_batch_preserves_order_and_scatters_correct_rows() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        // apply(k=5, +1) then gather(k=5) in the same batch: the gather must
        // observe the update (runs execute in admission order).
        let (a, arx) = apply_pending(1, 1.0, vec![(5, vec![1.0; 4])]);
        let (g, grx) = gather_pending(2, vec![5]);
        let before = table.get_one(5).unwrap();
        queue.offer(a).unwrap();
        queue.offer(g).unwrap();
        let mut b = batcher(&table, &queue);
        let (batch, backlog) = queue.next_batch(64, Duration::ZERO).unwrap();
        b.tick(batch, backlog);
        assert!(matches!(
            arx.try_recv().unwrap(),
            Response::Applied { id: 1 }
        ));
        match grx.try_recv().unwrap() {
            Response::Rows { rows, .. } => {
                // apply_gradients subtracts lr * grad.
                for (i, v) in rows[0].iter().enumerate() {
                    assert!(
                        (v - (before[i] - 1.0)).abs() < 1e-6,
                        "gather after apply in one batch must see the update"
                    );
                }
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn queued_expiry_rejects_with_typed_error_and_counts_rejection() {
        let table = test_table(4);
        let metrics = table.store().metrics();
        let queue = Arc::new(AdmissionQueue::new(64));
        let (mut p, rx) = gather_pending(9, vec![1]);
        p.deadline_us = 250;
        p.deadline = Some(Instant::now() - Duration::from_millis(1));
        // Admission happened before expiry in this scenario; simulate by
        // ticking directly with an already-expired entry.
        let mut b = batcher(&table, &queue);
        b.tick(vec![p], 0);
        match rx.try_recv().unwrap() {
            Response::Error { id, code, message } => {
                assert_eq!(id, 9);
                assert_eq!(code, ErrorCode::DeadlineExceeded);
                assert!(message.contains("250"), "typed message carries the budget");
            }
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(metrics.snapshot().serve_rejected, 1);
    }

    #[test]
    fn applies_with_different_lr_split_into_separate_runs() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        let (a1, r1) = apply_pending(1, 0.5, vec![(1, vec![1.0; 4])]);
        let (a2, r2) = apply_pending(2, 0.25, vec![(1, vec![1.0; 4])]);
        let before = table.get_one(1).unwrap();
        for p in [a1, a2] {
            queue.offer(p).unwrap();
        }
        let mut b = batcher(&table, &queue);
        let (batch, backlog) = queue.next_batch(64, Duration::ZERO).unwrap();
        b.tick(batch, backlog);
        assert!(matches!(r1.try_recv().unwrap(), Response::Applied { .. }));
        assert!(matches!(r2.try_recv().unwrap(), Response::Applied { .. }));
        let after = table.get_one(1).unwrap();
        assert!(
            (after[0] - (before[0] - 0.75)).abs() < 1e-6,
            "both updates applied with their own lr"
        );
    }

    #[test]
    fn adaptive_window_grows_on_backlog_and_shrinks_on_slow_ticks() {
        let mut w = AdaptiveWindow::new(16, 256, Duration::from_millis(2), true);
        // Full window + backlog → grow.
        assert_eq!(w.observe(16, 10, Duration::from_micros(100)), 32);
        assert_eq!(w.observe(32, 10, Duration::from_micros(100)), 64);
        // Latency overshoot → halve, even with backlog.
        assert_eq!(w.observe(64, 10, Duration::from_millis(5)), 32);
        // Partial drain, no backlog → hold.
        assert_eq!(w.observe(3, 0, Duration::from_micros(100)), 32);
        // Clamp at max.
        let mut w = AdaptiveWindow::new(200, 256, Duration::from_millis(2), true);
        assert_eq!(w.observe(200, 1, Duration::ZERO), 256);
        assert_eq!(w.observe(256, 1, Duration::ZERO), 256);
        // Clamp at 1 and fixed mode.
        let mut w = AdaptiveWindow::new(1, 256, Duration::from_nanos(1), true);
        assert_eq!(w.observe(1, 0, Duration::from_secs(1)), 1);
        let mut w = AdaptiveWindow::new(8, 256, Duration::from_millis(2), false);
        assert_eq!(
            w.observe(8, 99, Duration::from_secs(9)),
            8,
            "fixed mode never moves"
        );
    }

    #[test]
    fn run_loop_drains_after_close_and_flushes() {
        let table = test_table(4);
        let queue = Arc::new(AdmissionQueue::new(64));
        let mut rxs = Vec::new();
        for id in 0..5 {
            let (p, rx) = gather_pending(id, vec![id]);
            queue.offer(p).unwrap();
            rxs.push(rx);
        }
        queue.close();
        let b = batcher(&table, &queue);
        b.run().unwrap();
        for rx in rxs {
            assert!(matches!(rx.try_recv().unwrap(), Response::Rows { .. }));
        }
    }
}
