//! The admission queue: the bounded, deadline-aware hand-off between
//! connection threads and the batcher.
//!
//! Connection threads decode frames and [`AdmissionQueue::offer`] the work;
//! the batcher thread [`AdmissionQueue::next_batch`]es it in micro-batch
//! windows. Admission is where load shedding happens: a full queue rejects
//! with [`StorageError::Overloaded`] *without queueing* (bounding queueing
//! delay under overload), an already-expired deadline rejects with
//! [`StorageError::DeadlineExceeded`], and a closed (draining) queue rejects
//! with [`StorageError::Closed`]. Work that passes admission but expires
//! while queued is dropped by the batcher at drain time — either way, expired
//! work never occupies a fused storage batch.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use mlkv_storage::StorageError;

use crate::protocol::Response;

/// The work a request asks the batcher to perform.
#[derive(Debug)]
pub enum Work {
    /// Fetch embeddings for `keys` (order preserved, duplicates allowed).
    Gather {
        /// Keys to fetch.
        keys: Vec<u64>,
    },
    /// Apply gradients with learning rate `lr`.
    Apply {
        /// Learning rate of the fused `apply_gradients` call.
        lr: f32,
        /// `(key, gradient)` pairs, applied cumulatively in order.
        updates: Vec<(u64, Vec<f32>)>,
    },
}

impl Work {
    /// Number of keys this request contributes to a fused batch.
    pub fn key_count(&self) -> usize {
        match self {
            Work::Gather { keys } => keys.len(),
            Work::Apply { updates, .. } => updates.len(),
        }
    }
}

/// How a [`Pending`] request's response travels back to its origin. A boxed
/// closure so the batcher never learns about sockets: the server wraps a
/// locked TCP stream, tests wrap an `mpsc` sender.
pub type Replier = Box<dyn FnOnce(Response) + Send>;

/// One admitted request waiting for (or riding in) a micro-batch.
pub struct Pending {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// Idempotency session for mutations (`0` = none; see
    /// [`crate::dedup::DedupWindow`]).
    pub session_id: u64,
    /// The deadline budget from the wire, kept for the typed error.
    pub deadline_us: u64,
    /// Absolute expiry instant (`None` = no deadline).
    pub deadline: Option<Instant>,
    /// The work to fuse.
    pub work: Work,
    /// Response path back to the originating connection.
    pub reply: Replier,
}

impl Pending {
    /// True when the deadline has passed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("id", &self.id)
            .field("deadline_us", &self.deadline_us)
            .field("work", &self.work)
            .finish_non_exhaustive()
    }
}

struct Inner {
    items: VecDeque<Pending>,
    closed: bool,
}

/// Bounded MPSC queue with deadline-aware admission (see module docs).
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// Create a queue admitting at most `capacity` requests (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// True once [`AdmissionQueue::close`] ran.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Admit `pending`, or reject it with the typed error and hand it back so
    /// the caller can answer the originating connection.
    pub fn offer(&self, pending: Pending) -> Result<(), (Pending, StorageError)> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.closed {
            return Err((pending, StorageError::Closed));
        }
        if pending.expired(Instant::now()) {
            let deadline_us = pending.deadline_us;
            return Err((pending, StorageError::DeadlineExceeded { deadline_us }));
        }
        if g.items.len() >= self.capacity {
            let depth = g.items.len();
            return Err((
                pending,
                StorageError::Overloaded {
                    depth,
                    capacity: self.capacity,
                },
            ));
        }
        g.items.push_back(pending);
        drop(g);
        self.cv.notify_all();
        Ok(())
    }

    /// Block until work is queued, give concurrent clients `window_wait` to
    /// land more requests (unless `max` is already met), then drain up to
    /// `max` requests. Returns the drained batch plus the depth left behind
    /// (the batcher's backlog signal), or `None` once the queue is closed
    /// *and* empty — the drain-on-shutdown contract: closing stops admission
    /// immediately but already-admitted work is still handed out.
    pub fn next_batch(&self, max: usize, window_wait: Duration) -> Option<(Vec<Pending>, usize)> {
        let max = max.max(1);
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while g.items.is_empty() {
            if g.closed {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        // Micro-batch window: the first request opens it; it closes when the
        // size cap fills, the queue closes, or the window elapses.
        if !window_wait.is_zero() {
            let window_closes = Instant::now() + window_wait;
            while g.items.len() < max && !g.closed {
                let now = Instant::now();
                let Some(left) = window_closes
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (ng, timeout) = self
                    .cv
                    .wait_timeout(g, left)
                    .unwrap_or_else(|e| e.into_inner());
                g = ng;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = g.items.len().min(max);
        let batch: Vec<Pending> = g.items.drain(..take).collect();
        let left = g.items.len();
        Some((batch, left))
    }

    /// Stop admitting work and wake the batcher; queued requests will still
    /// be drained by subsequent [`AdmissionQueue::next_batch`] calls.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn pending(id: u64, deadline: Option<Instant>) -> (Pending, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                id,
                session_id: 0,
                deadline_us: 1,
                deadline,
                work: Work::Gather { keys: vec![id] },
                reply: Box::new(move |r| {
                    let _ = tx.send(r);
                }),
            },
            rx,
        )
    }

    #[test]
    fn offer_then_drain_preserves_admission_order() {
        let q = AdmissionQueue::new(8);
        for id in 0..5 {
            let (p, _rx) = pending(id, None);
            q.offer(p).unwrap();
        }
        assert_eq!(q.depth(), 5);
        let (batch, left) = q.next_batch(3, Duration::ZERO).unwrap();
        assert_eq!(
            batch.iter().map(|p| p.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(left, 2);
        let (batch, left) = q.next_batch(16, Duration::ZERO).unwrap();
        assert_eq!(batch.iter().map(|p| p.id).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(left, 0);
    }

    #[test]
    fn full_queue_sheds_with_typed_overload() {
        let q = AdmissionQueue::new(2);
        q.offer(pending(0, None).0).unwrap();
        q.offer(pending(1, None).0).unwrap();
        let (returned, err) = q.offer(pending(2, None).0).unwrap_err();
        assert_eq!(returned.id, 2, "rejected work is handed back for the reply");
        assert!(matches!(
            err,
            StorageError::Overloaded {
                depth: 2,
                capacity: 2
            }
        ));
        assert_eq!(q.depth(), 2, "rejected work was never queued");
    }

    #[test]
    fn expired_deadline_is_rejected_at_admission() {
        let q = AdmissionQueue::new(8);
        let past = Instant::now() - Duration::from_millis(1);
        let (_, err) = q.offer(pending(7, Some(past)).0).unwrap_err();
        assert!(matches!(
            err,
            StorageError::DeadlineExceeded { deadline_us: 1 }
        ));
    }

    #[test]
    fn close_rejects_new_work_but_drains_queued_work() {
        let q = AdmissionQueue::new(8);
        q.offer(pending(1, None).0).unwrap();
        q.close();
        let (_, err) = q.offer(pending(2, None).0).unwrap_err();
        assert!(matches!(err, StorageError::Closed));
        let (batch, _) = q.next_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1, "admitted work survives close");
        assert!(
            q.next_batch(8, Duration::ZERO).is_none(),
            "then the queue ends"
        );
    }

    #[test]
    fn window_wait_accumulates_concurrent_offers() {
        let q = std::sync::Arc::new(AdmissionQueue::new(64));
        q.offer(pending(0, None).0).unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let feeder = std::thread::spawn(move || {
            for id in 1..4 {
                std::thread::sleep(Duration::from_millis(2));
                q2.offer(pending(id, None).0).unwrap();
            }
        });
        // A generous window lets the slow feeder land all of its requests
        // into one batch.
        let (batch, _) = q.next_batch(64, Duration::from_millis(500)).unwrap();
        feeder.join().unwrap();
        // The window closes by timeout (cap 64 is never met), so at least the
        // requests offered within it are fused; the first is guaranteed.
        assert!(!batch.is_empty());
        assert_eq!(batch[0].id, 0);
        assert_eq!(batch.len() + q.depth(), 4, "nothing is lost");
    }

    #[test]
    fn size_cap_closes_the_window_early() {
        let q = AdmissionQueue::new(64);
        for id in 0..4 {
            q.offer(pending(id, None).0).unwrap();
        }
        let start = Instant::now();
        let (batch, _) = q.next_batch(4, Duration::from_secs(5)).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "a met size cap must not wait out the time window"
        );
    }
}
