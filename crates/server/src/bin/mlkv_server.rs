//! `mlkv-server` — serve an embedding table over TCP.
//!
//! ```text
//! mlkv-server --addr 127.0.0.1:7878 --backend faster --dim 64 \
//!     --durability group:4096 --dir /tmp/mlkv-serve
//! ```
//!
//! The process runs until a client sends a `Shutdown` frame (see
//! `Client::shutdown_server`) or it receives SIGINT/SIGTERM-free EOF from the
//! environment; shutdown drains admitted work and flushes the table. The
//! `MLKV_IO_BACKEND`, `MLKV_PARALLELISM`, `MLKV_DURABILITY`, and
//! `MLKV_REPLICATION_MODE` environment overrides apply on top of the flags;
//! `--replicate-from` starts the process as a replica of the given primary.

use std::process::ExitCode;
use std::time::Duration;

use mlkv::BackendKind;
use mlkv_server::{ReplicationMode, ServerBuilder};
use mlkv_storage::DurabilityMode;

fn usage() -> ! {
    eprintln!(
        "usage: mlkv-server [--addr HOST:PORT] [--backend NAME] [--dim N]\n\
         \x20                 [--memory-budget-mb N] [--parallelism N]\n\
         \x20                 [--durability none|buffered|group:<records>]\n\
         \x20                 [--dir PATH] [--staleness-bound N] [--seed N]\n\
         \x20                 [--queue-capacity N] [--window-init N] [--window-max N]\n\
         \x20                 [--window-wait-us N] [--no-adaptive]\n\
         \x20                 [--dedup-slots N] [--probe-interval-ms N]\n\
         \x20                 [--retry-after-ms N]\n\
         \x20                 [--replicate-from HOST:PORT]\n\
         \x20                 [--replication-mode async|semisync[:acks]]\n\
         backends: {}",
        BackendKind::ALL
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_backend(name: &str) -> Option<BackendKind> {
    BackendKind::ALL
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut builder_backend = BackendKind::Mlkv;
    let mut dim = 64usize;
    let mut memory_budget_mb: Option<usize> = None;
    let mut parallelism: Option<usize> = None;
    let mut durability: Option<DurabilityMode> = None;
    let mut dir: Option<String> = None;
    let mut staleness_bound = 0u32;
    let mut seed = 0x5eedu64;
    let mut queue_capacity: Option<usize> = None;
    let mut window_init: Option<usize> = None;
    let mut window_max: Option<usize> = None;
    let mut window_wait_us: Option<u64> = None;
    let mut adaptive = true;
    let mut dedup_slots: Option<usize> = None;
    let mut probe_interval_ms: Option<u64> = None;
    let mut retry_after_ms: Option<u64> = None;
    let mut replicate_from: Option<String> = None;
    let mut replication_mode: Option<ReplicationMode> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value().to_string(),
            "--backend" => {
                let name = value();
                builder_backend = parse_backend(name).unwrap_or_else(|| {
                    eprintln!("unknown backend: {name}");
                    usage()
                });
            }
            "--dim" => dim = value().parse().unwrap_or_else(|_| usage()),
            "--memory-budget-mb" => {
                memory_budget_mb = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--parallelism" => parallelism = Some(value().parse().unwrap_or_else(|_| usage())),
            "--durability" => {
                let spec = value();
                durability = Some(DurabilityMode::parse(spec).unwrap_or_else(|| {
                    eprintln!("bad durability spec: {spec}");
                    usage()
                }));
            }
            "--dir" => dir = Some(value().to_string()),
            "--staleness-bound" => staleness_bound = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--queue-capacity" => {
                queue_capacity = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--window-init" => window_init = Some(value().parse().unwrap_or_else(|_| usage())),
            "--window-max" => window_max = Some(value().parse().unwrap_or_else(|_| usage())),
            "--window-wait-us" => {
                window_wait_us = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--no-adaptive" => adaptive = false,
            "--dedup-slots" => dedup_slots = Some(value().parse().unwrap_or_else(|_| usage())),
            "--probe-interval-ms" => {
                probe_interval_ms = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--retry-after-ms" => {
                retry_after_ms = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--replicate-from" => replicate_from = Some(value().to_string()),
            "--replication-mode" => {
                let spec = value();
                replication_mode = Some(ReplicationMode::parse(spec).unwrap_or_else(|| {
                    eprintln!("bad replication mode: {spec}");
                    usage()
                }));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let mut builder = ServerBuilder::new(builder_backend, dim)
        .staleness_bound(staleness_bound)
        .seed(seed)
        .adaptive_window(adaptive);
    if let Some(mb) = memory_budget_mb {
        builder = builder.memory_budget(mb << 20);
    }
    if let Some(p) = parallelism {
        builder = builder.parallelism(p);
    }
    if let Some(d) = durability {
        builder = builder.durability(d);
    }
    if let Some(d) = dir {
        builder = builder.dir(d);
    }
    if let Some(c) = queue_capacity {
        builder = builder.queue_capacity(c);
    }
    if let Some(w) = window_init {
        builder = builder.window_initial(w);
    }
    if let Some(w) = window_max {
        builder = builder.window_max(w);
    }
    if let Some(us) = window_wait_us {
        builder = builder.window_wait(Duration::from_micros(us));
    }
    if let Some(n) = dedup_slots {
        builder = builder.dedup_slots(n);
    }
    if let Some(ms) = probe_interval_ms {
        builder = builder.probe_interval(Duration::from_millis(ms));
    }
    if let Some(ms) = retry_after_ms {
        builder = builder.unavailable_retry_after_ms(ms);
    }
    if let Some(primary) = replicate_from {
        builder = builder.replicate_from(primary);
    }
    if let Some(mode) = replication_mode {
        builder = builder.replication_mode(mode);
    }

    let handle = match builder.serve(&addr) {
        Ok(h) => h,
        Err(err) => {
            eprintln!("mlkv-server: failed to start on {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "mlkv-server: serving {} (dim {dim}) on {}",
        builder_backend.name(),
        handle.local_addr()
    );
    match handle.join() {
        Ok(()) => {
            eprintln!("mlkv-server: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("mlkv-server: shutdown error: {err}");
            ExitCode::FAILURE
        }
    }
}
