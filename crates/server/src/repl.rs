//! Primary → replica replication over the shared WAL framing.
//!
//! A replica is an ordinary server started with `--replicate-from HOST:PORT`:
//! it dials the primary's client port, sends [`Request::ReplHandshake`] with
//! the frame ordinal it has durably applied, and the connection switches into
//! a one-way append stream. The primary walks its [`WalTap`] with a
//! [`WalShipper`] and sends each acknowledged group verbatim as
//! [`Response::ReplAppend`]; the replica replays groups through
//! [`ReplicaApplier`] (re-logging them in its *own* WAL, so its durability
//! story is the same as a primary's) and reports progress with
//! [`Request::ReplAck`]. A replica that lags past the tap's retention window
//! is caught up by state transfer ([`Response::ReplSnapshot`] chunks followed
//! by [`Response::ReplStart`]); re-application overlap is harmless because
//! WAL frames carry idempotent post-images.
//!
//! Acknowledgement modes ([`ReplicationMode`]):
//!
//! * `Async` — the primary acknowledges an apply as soon as its own WAL
//!   commits it (replicas trail by the shipping lag).
//! * `SemiSync { acks }` — the primary additionally waits until `acks`
//!   replicas have acked the fused batch's WAL tail before acknowledging.
//!   An ack-timeout is *not* an acknowledgement: the batch is refused with
//!   the retryable [`StorageError::Unavailable`] and its sessions are marked
//!   in-doubt, so the client's retry reconciles through the durable session
//!   marker exactly like a write fault — acked-but-unreplicated mutations
//!   cannot exist.
//!
//! Failover is promotion: [`crate::ServerHandle::promote`] stops the
//! replication client, rebuilds the dedup windows from the replicated session
//! markers (exactly as restart recovery does), and flips
//! [`crate::Role::Replica`] → [`crate::Role::Primary`], after which the former replica
//! accepts mutations. Clients carry the endpoint list and re-resolve on
//! failure, deduplicating in-flight retries across the promotion.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mlkv_storage::wal::{ReplicaApplier, Shipment, WalGroup, WalShipper, WalTap};
use mlkv_storage::{KvStore, ReplicationTuning, StorageError, StorageMetrics, WriteBatch};

use crate::protocol::{encode_error, read_frame, write_frame, Request, Response};

/// Entries per [`Response::ReplSnapshot`] chunk, keeping each state-transfer
/// frame far below [`crate::protocol::MAX_FRAME_BYTES`] for embedding-sized
/// values.
const SNAPSHOT_CHUNK_PAIRS: usize = 1024;

/// When the primary acknowledges a mutation relative to replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Acknowledge at local WAL commit; replicas trail asynchronously.
    Async,
    /// Acknowledge only once `acks` replicas have durably applied the
    /// batch's WAL tail (clamped to ≥ 1).
    SemiSync {
        /// Replica acknowledgements required per fused batch.
        acks: usize,
    },
}

impl ReplicationMode {
    /// Parse `"async"` or `"semisync[:acks]"` (as accepted by the
    /// `--replication-mode` flag and `MLKV_REPLICATION_MODE`).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("async") {
            return Some(Self::Async);
        }
        if let Some(rest) = s
            .strip_prefix("semisync")
            .or_else(|| s.strip_prefix("SEMISYNC"))
        {
            let acks = match rest.strip_prefix(':') {
                Some(n) => n.trim().parse::<usize>().ok()?,
                None if rest.is_empty() => 1,
                None => return None,
            };
            return Some(Self::SemiSync { acks: acks.max(1) });
        }
        None
    }

    /// The mode named by `MLKV_REPLICATION_MODE`, if set and well-formed.
    pub fn from_env() -> Option<Self> {
        std::env::var("MLKV_REPLICATION_MODE")
            .ok()
            .and_then(|s| Self::parse(&s))
    }
}

impl std::fmt::Display for ReplicationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Async => write!(f, "async"),
            Self::SemiSync { acks } => write!(f, "semisync:{acks}"),
        }
    }
}

struct HubInner {
    /// Highest acked frame ordinal per attached replica stream.
    acked: HashMap<u64, u64>,
    next_id: u64,
}

/// Primary-side replication state: the attached replica streams and their
/// acknowledged offsets. The batcher's semi-sync gate waits on it; each
/// replica connection registers itself for the life of its stream.
pub struct ReplicationHub {
    tap: Option<Arc<WalTap>>,
    metrics: Arc<StorageMetrics>,
    tuning: ReplicationTuning,
    inner: Mutex<HubInner>,
    changed: Condvar,
}

impl ReplicationHub {
    /// A hub over the serving store's tap (`None` when the store cannot ship
    /// — no WAL, or no tap configured; handshakes are then refused).
    pub fn new(
        tap: Option<Arc<WalTap>>,
        metrics: Arc<StorageMetrics>,
        tuning: ReplicationTuning,
    ) -> Self {
        Self {
            tap,
            metrics,
            tuning,
            inner: Mutex::new(HubInner {
                acked: HashMap::new(),
                next_id: 0,
            }),
            changed: Condvar::new(),
        }
    }

    /// The replication tail: ordinal one past the last acknowledged frame.
    pub fn tail(&self) -> u64 {
        self.tap.as_ref().map(|t| t.next_offset()).unwrap_or(0)
    }

    /// The semi-sync ack wait budget.
    pub fn ack_timeout(&self) -> Duration {
        Duration::from_millis(self.tuning.ack_timeout_ms.max(1))
    }

    /// The backoff hint carried by semi-sync refusals.
    pub fn retry_hint_ms(&self) -> u64 {
        self.tuning.heartbeat_ms.max(1)
    }

    /// Number of currently attached replica streams.
    pub fn replica_count(&self) -> usize {
        self.lock().acked.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register(&self) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.acked.insert(id, 0);
        id
    }

    pub(crate) fn unregister(&self, id: u64) {
        self.lock().acked.remove(&id);
        self.changed.notify_all();
    }

    pub(crate) fn record_ack(&self, id: u64, applied: u64) {
        let mut inner = self.lock();
        if let Some(slot) = inner.acked.get_mut(&id) {
            *slot = (*slot).max(applied);
        }
        let min_acked = inner.acked.values().copied().min().unwrap_or(0);
        drop(inner);
        self.metrics.record_repl_ack();
        self.metrics
            .set_repl_lag(self.tail().saturating_sub(min_acked));
        self.changed.notify_all();
    }

    /// Block until `need` replicas have acked frame ordinal `offset` (or
    /// beyond), up to `timeout`. Returns whether the quorum was reached.
    pub fn wait_for_acks(&self, offset: u64, need: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            let got = inner.acked.values().filter(|&&a| a >= offset).count();
            if got >= need {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Take over a connection that sent [`Request::ReplHandshake`]: stream
    /// WAL groups to the replica until it disconnects or `shutdown` is set.
    /// Runs on the connection's thread; an ack-reader thread drains the
    /// replica's [`Request::ReplAck`] frames concurrently.
    pub fn serve_replica(
        self: &Arc<Self>,
        reader: BufReader<TcpStream>,
        writer: Arc<Mutex<TcpStream>>,
        store: Arc<dyn KvStore>,
        applied: u64,
        shutdown: &AtomicBool,
    ) {
        let Some(tap) = self.tap.clone() else {
            let err = StorageError::InvalidArgument(
                "this server has no replication tap (WAL disabled?)".into(),
            );
            let (code, message) = encode_error(&err);
            send_response(
                &writer,
                &Response::Error {
                    id: 0,
                    code,
                    message,
                },
            );
            return;
        };

        let id = self.register();
        let hub = Arc::clone(self);
        let acker = thread::Builder::new()
            .name("mlkv-repl-acks".into())
            .spawn(move || {
                let mut reader = reader;
                while let Ok(Some(body)) = read_frame(&mut reader) {
                    match Request::decode(&body) {
                        Ok(Request::ReplAck { applied }) => hub.record_ack(id, applied),
                        Ok(_) => {}
                        Err(_) => break,
                    }
                }
                hub.unregister(id);
            })
            .expect("spawn replication ack reader");

        let mut cursor = applied;
        let heartbeat = Duration::from_millis(self.tuning.heartbeat_ms.max(1));
        // Below retention already at attach: state-transfer before streaming.
        if cursor < tap.base_offset() {
            match self.send_snapshot(&writer, store.as_ref(), &tap) {
                Some(resume) => cursor = resume,
                None => {
                    self.finish_stream(id, &writer, acker);
                    return;
                }
            }
        }
        if !send_response(
            &writer,
            &Response::ReplStart {
                resume_from: cursor,
            },
        ) {
            self.finish_stream(id, &writer, acker);
            return;
        }
        let mut shipper = WalShipper::new(Arc::clone(&tap), cursor);
        while !shutdown.load(Ordering::SeqCst) {
            match shipper.next(heartbeat) {
                Shipment::Group(group) => {
                    let ok = send_response(
                        &writer,
                        &Response::ReplAppend {
                            offset: group.offset,
                            frames: group.frames.clone(),
                        },
                    );
                    if !ok {
                        break;
                    }
                    self.metrics.record_repl_group_shipped();
                }
                Shipment::Gap { resume_from } => {
                    // The replica lagged out of retention mid-stream: snapshot
                    // again and resume at the recorded tail.
                    let resume = match self.send_snapshot(&writer, store.as_ref(), &tap) {
                        Some(r) => r.max(resume_from),
                        None => break,
                    };
                    if !send_response(
                        &writer,
                        &Response::ReplStart {
                            resume_from: resume,
                        },
                    ) {
                        break;
                    }
                    shipper = WalShipper::new(Arc::clone(&tap), resume);
                }
                Shipment::Idle => {}
            }
        }
        self.finish_stream(id, &writer, acker);
    }

    /// Stream the store's full state as snapshot chunks. Returns the frame
    /// ordinal the append stream resumes at, or `None` when the transfer
    /// failed (unsupported snapshot, dead connection).
    fn send_snapshot(
        &self,
        writer: &Arc<Mutex<TcpStream>>,
        store: &dyn KvStore,
        tap: &WalTap,
    ) -> Option<u64> {
        // Record the tail *before* scanning: every frame acknowledged before
        // this point is already applied to the store, so the scan covers it;
        // frames published during the scan are ≥ resume_from and will be
        // streamed (re-application of any overlap is idempotent).
        let resume_from = tap.next_offset();
        let pairs = match store.replication_snapshot() {
            Ok(pairs) => pairs,
            Err(err) => {
                let (code, message) = encode_error(&err);
                send_response(
                    writer,
                    &Response::Error {
                        id: 0,
                        code,
                        message,
                    },
                );
                return None;
            }
        };
        let mut chunks = pairs.chunks(SNAPSHOT_CHUNK_PAIRS);
        loop {
            let chunk = chunks.next().map(<[_]>::to_vec).unwrap_or_default();
            let last = chunk.is_empty();
            // An empty store still sends one (empty) chunk so the replica
            // always observes the transfer.
            if !send_response(
                writer,
                &Response::ReplSnapshot {
                    resume_from,
                    pairs: chunk,
                },
            ) {
                return None;
            }
            if last {
                break;
            }
        }
        // (The engine's `replication_snapshot` recorded the metric.)
        Some(resume_from)
    }

    fn finish_stream(&self, id: u64, writer: &Arc<Mutex<TcpStream>>, acker: JoinHandle<()>) {
        // Shut the socket so the ack reader (blocked in read_frame on the
        // same fd) unblocks, then reap it.
        if let Ok(stream) = writer.lock() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = acker.join();
        self.unregister(id);
    }
}

fn send_response(writer: &Arc<Mutex<TcpStream>>, response: &Response) -> bool {
    let mut stream = match writer.lock() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    write_frame(&mut *stream, &response.encode()).is_ok()
}

/// Replica-side pump: a background thread that dials the primary, replays the
/// shipped stream into the local store, and acks progress. Reconnects with
/// heartbeat pacing until stopped (promotion or shutdown).
pub struct ReplicationClient {
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
    applier: Arc<ReplicaApplier>,
}

impl ReplicationClient {
    /// Spawn the replication pump for `store`, streaming from `primary`.
    pub fn spawn(
        primary: String,
        store: Arc<dyn KvStore>,
        metrics: Arc<StorageMetrics>,
        tuning: ReplicationTuning,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let applier = Arc::new(ReplicaApplier::new(store, 0));
        let thread = {
            let stop = Arc::clone(&stop);
            let applier = Arc::clone(&applier);
            thread::Builder::new()
                .name("mlkv-repl-client".into())
                .spawn(move || run_replication_client(&primary, &applier, &metrics, tuning, &stop))
                .expect("spawn replication client")
        };
        Self {
            stop,
            thread: Mutex::new(Some(thread)),
            applier,
        }
    }

    /// Frame ordinal the replica has durably applied.
    pub fn applied(&self) -> u64 {
        self.applier.applied()
    }

    /// Stop the pump and wait for it to exit (promotion, shutdown).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = self.thread.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicationClient {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_replication_client(
    primary: &str,
    applier: &ReplicaApplier,
    metrics: &StorageMetrics,
    tuning: ReplicationTuning,
    stop: &AtomicBool,
) {
    let heartbeat = Duration::from_millis(tuning.heartbeat_ms.max(1));
    while !stop.load(Ordering::SeqCst) {
        let Some(stream) = dial(primary, heartbeat) else {
            sleep_unless_stopped(heartbeat, stop);
            continue;
        };
        let _ = stream.set_nodelay(true);
        // Bounded reads so the pump notices `stop` promptly even on an idle
        // primary; a timeout doubles as the heartbeat-ack tick.
        let _ = stream.set_read_timeout(Some(heartbeat));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let mut reader = BufReader::new(stream);
        let handshake = Request::ReplHandshake {
            applied: applier.applied(),
        };
        if write_frame(&mut writer, &handshake.encode()).is_err() {
            sleep_unless_stopped(heartbeat, stop);
            continue;
        }
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match read_frame(&mut reader) {
                Ok(Some(body)) => {
                    if !handle_stream_frame(&body, applier, metrics, &mut writer) {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Idle tick: refresh the primary's view of our progress.
                    let ack = Request::ReplAck {
                        applied: applier.applied(),
                    };
                    if write_frame(&mut writer, &ack.encode()).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        sleep_unless_stopped(heartbeat, stop);
    }
}

/// Apply one primary frame. Returns false when the stream must be torn down
/// (decode failure, apply failure, refused handshake).
fn handle_stream_frame(
    body: &[u8],
    applier: &ReplicaApplier,
    metrics: &StorageMetrics,
    writer: &mut TcpStream,
) -> bool {
    match Response::decode(body) {
        Ok(Response::ReplSnapshot { pairs, .. }) => install_snapshot_chunk(applier, &pairs),
        Ok(Response::ReplStart { resume_from }) => {
            applier.set_applied(applier.applied().max(resume_from));
            ack(writer, applier)
        }
        Ok(Response::ReplAppend { offset, frames }) => {
            let group = WalGroup { offset, frames };
            if applier.apply(&group).is_err() {
                return false;
            }
            metrics.record_repl_group_applied();
            ack(writer, applier)
        }
        Ok(Response::Error { .. }) => false,
        Ok(_) | Err(_) => false,
    }
}

fn install_snapshot_chunk(applier: &ReplicaApplier, pairs: &[(u64, Vec<u8>)]) -> bool {
    if pairs.is_empty() {
        return true;
    }
    let mut batch = WriteBatch::new();
    for (key, value) in pairs {
        batch.put(*key, value.clone());
    }
    applier.store().write_batch(&batch).is_ok()
}

fn ack(writer: &mut TcpStream, applier: &ReplicaApplier) -> bool {
    let frame = Request::ReplAck {
        applied: applier.applied(),
    };
    write_frame(writer, &frame.encode()).is_ok()
}

fn dial(addr: &str, timeout: Duration) -> Option<TcpStream> {
    let targets = addr.to_socket_addrs().ok()?;
    for target in targets {
        if let Ok(stream) =
            TcpStream::connect_timeout(&target, timeout.max(Duration::from_millis(50)))
        {
            return Some(stream);
        }
    }
    None
}

fn sleep_unless_stopped(d: Duration, stop: &AtomicBool) {
    if !stop.load(Ordering::SeqCst) {
        thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_mode_parses_flag_grammar() {
        assert_eq!(
            ReplicationMode::parse("async"),
            Some(ReplicationMode::Async)
        );
        assert_eq!(
            ReplicationMode::parse(" Async "),
            Some(ReplicationMode::Async)
        );
        assert_eq!(
            ReplicationMode::parse("semisync"),
            Some(ReplicationMode::SemiSync { acks: 1 })
        );
        assert_eq!(
            ReplicationMode::parse("semisync:3"),
            Some(ReplicationMode::SemiSync { acks: 3 })
        );
        assert_eq!(
            ReplicationMode::parse("semisync:0"),
            Some(ReplicationMode::SemiSync { acks: 1 }),
            "ack quorum clamps to one"
        );
        assert_eq!(ReplicationMode::parse("semisync:x"), None);
        assert_eq!(ReplicationMode::parse("chain"), None);
        assert_eq!(
            ReplicationMode::SemiSync { acks: 2 }.to_string(),
            "semisync:2"
        );
    }

    #[test]
    fn hub_quorum_wait_counts_acked_replicas() {
        let hub = Arc::new(ReplicationHub::new(
            Some(Arc::new(WalTap::new(16))),
            Arc::new(StorageMetrics::new()),
            ReplicationTuning::default(),
        ));
        assert!(
            hub.wait_for_acks(0, 0, Duration::ZERO),
            "a zero quorum is vacuously satisfied"
        );
        assert!(
            !hub.wait_for_acks(5, 1, Duration::from_millis(10)),
            "no replicas attached"
        );
        let a = hub.register();
        let b = hub.register();
        assert_eq!(hub.replica_count(), 2);
        hub.record_ack(a, 5);
        assert!(hub.wait_for_acks(5, 1, Duration::ZERO));
        assert!(!hub.wait_for_acks(5, 2, Duration::from_millis(10)));
        hub.record_ack(b, 7);
        assert!(hub.wait_for_acks(5, 2, Duration::ZERO));
        // Acks never regress.
        hub.record_ack(b, 3);
        assert!(hub.wait_for_acks(7, 1, Duration::ZERO));
        hub.unregister(a);
        assert_eq!(hub.replica_count(), 1);
    }

    #[test]
    fn quorum_wait_unblocks_on_ack_arrival() {
        let hub = Arc::new(ReplicationHub::new(
            Some(Arc::new(WalTap::new(16))),
            Arc::new(StorageMetrics::new()),
            ReplicationTuning::default(),
        ));
        let id = hub.register();
        let waiter = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || hub.wait_for_acks(9, 1, Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        hub.record_ack(id, 9);
        assert!(
            waiter.join().unwrap(),
            "waiter saw the ack, not the timeout"
        );
    }
}
