//! The TCP front end: listener, connection threads, and graceful shutdown.
//!
//! Thread model:
//!
//! * one **accept** thread owns the listener and, at shutdown, the teardown
//!   sequence (join batcher → unblock and join connection threads);
//! * one **connection** thread per client decodes frames and offers work to
//!   the [`AdmissionQueue`]; replies are written through a per-connection
//!   mutex so batcher scatters and inline rejections never interleave bytes;
//! * one **batcher** thread issues the fused storage calls ([`Batcher`]).
//!
//! Shutdown (from a `Shutdown` frame or [`ServerHandle::shutdown`]) is
//! graceful: admission closes immediately (new work is rejected with
//! `ShuttingDown`), the batcher drains everything already admitted and
//! flushes the table — under a group-commit config that is the WAL/fsync
//! path — and only then are client sockets shut down and joined.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mlkv::{BackendKind, EmbeddingTable};
use mlkv_storage::{
    DurabilityMode, FaultTuning, IoBackend, KvStore, ReplicationTuning, StorageError,
    StorageMetrics, StorageResult, StoreConfig, WalTap,
};

use crate::batcher::{Batcher, BatcherConfig};
use crate::dedup::{is_reserved_key, DedupWindow};
use crate::health::{Health, HealthState, Role};
use crate::protocol::{encode_error, read_frame, write_frame, ErrorCode, Request, Response};
use crate::queue::{AdmissionQueue, Pending, Work};
use crate::repl::{ReplicationClient, ReplicationHub, ReplicationMode};

/// Default admission-queue capacity (requests).
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Builder for a serving instance: storage knobs mirror
/// [`mlkv::EmbeddingModelBuilder`], serving knobs cover the admission queue
/// and the micro-batch window.
pub struct ServerBuilder {
    backend: BackendKind,
    dim: usize,
    staleness_bound: u32,
    memory_budget: Option<usize>,
    page_size: Option<usize>,
    parallelism: Option<usize>,
    write_shards: Option<usize>,
    io_backend: Option<IoBackend>,
    io_queue_depth: Option<usize>,
    durability: Option<DurabilityMode>,
    dir: Option<std::path::PathBuf>,
    seed: u64,
    env_overrides: bool,
    queue_capacity: usize,
    batcher: BatcherConfig,
    table: Option<Arc<EmbeddingTable>>,
    dedup_slots: Option<usize>,
    probe_interval: Option<Duration>,
    unavailable_retry_after_ms: Option<u64>,
    replicate_from: Option<String>,
    replication_mode: Option<ReplicationMode>,
    replication_tuning: Option<ReplicationTuning>,
}

impl ServerBuilder {
    /// Start from a backend and an embedding dimension.
    pub fn new(backend: BackendKind, dim: usize) -> Self {
        Self {
            backend,
            dim,
            staleness_bound: 0,
            memory_budget: None,
            page_size: None,
            parallelism: None,
            write_shards: None,
            io_backend: None,
            io_queue_depth: None,
            durability: None,
            dir: None,
            seed: 0x5eed,
            env_overrides: true,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            batcher: BatcherConfig::default(),
            table: None,
            dedup_slots: None,
            probe_interval: None,
            unavailable_retry_after_ms: None,
            replicate_from: None,
            replication_mode: None,
            replication_tuning: None,
        }
    }

    /// Staleness bound forwarded to the table (0 = strict).
    pub fn staleness_bound(mut self, bound: u32) -> Self {
        self.staleness_bound = bound;
        self
    }

    /// Memory budget in bytes for the chosen engine.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Page size for paged engines.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_size = Some(bytes);
        self
    }

    /// Batch-executor parallelism (0 = auto, 1 = serial).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers);
        self
    }

    /// Write-side shard/worker count of the storage engine (0 = follow
    /// `parallelism`, 1 = the serial single-lock write path); see
    /// `StoreConfig::write_shards`. Overridable by `MLKV_WRITE_SHARDS` when
    /// env overrides apply.
    pub fn write_shards(mut self, shards: usize) -> Self {
        self.write_shards = Some(shards);
        self
    }

    /// Cold-path I/O backend.
    pub fn io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = Some(backend);
        self
    }

    /// Submission-queue depth for the async I/O backend.
    pub fn io_queue_depth(mut self, depth: usize) -> Self {
        self.io_queue_depth = Some(depth);
        self
    }

    /// Durability mode (graceful shutdown flushes through this path).
    pub fn durability(mut self, mode: DurabilityMode) -> Self {
        self.durability = Some(mode);
        self
    }

    /// On-disk directory for file-backed configs.
    pub fn dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Seed for deterministic embedding initialisation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether `MLKV_*` environment overrides apply (default true).
    pub fn env_overrides(mut self, apply: bool) -> Self {
        self.env_overrides = apply;
        self
    }

    /// Admission-queue capacity; beyond it requests are shed with
    /// [`StorageError::Overloaded`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Initial micro-batch window (requests per tick).
    pub fn window_initial(mut self, window: usize) -> Self {
        self.batcher.window_initial = window;
        self
    }

    /// Upper clamp for the adaptive window.
    pub fn window_max(mut self, max: usize) -> Self {
        self.batcher.window_max = max;
        self
    }

    /// How long a non-full window stays open for more arrivals.
    pub fn window_wait(mut self, wait: Duration) -> Self {
        self.batcher.window_wait = wait;
        self
    }

    /// Tick latency above which the adaptive window shrinks.
    pub fn window_latency_target(mut self, target: Duration) -> Self {
        self.batcher.window_latency_target = target;
        self
    }

    /// `false` pins the window at `window_initial` (per-request dispatch
    /// when it is 1) — the benchmark baseline.
    pub fn adaptive_window(mut self, adaptive: bool) -> Self {
        self.batcher.adaptive = adaptive;
        self
    }

    /// Serve an existing table instead of building one (tests, embedding the
    /// server in a trainer process). Storage knobs are ignored.
    pub fn table(mut self, table: Arc<EmbeddingTable>) -> Self {
        self.table = Some(table);
        self
    }

    /// Slots in the idempotency dedup window (default from
    /// `MLKV_DEDUP_SLOTS`, else 1024). One durable marker key per slot.
    pub fn dedup_slots(mut self, slots: usize) -> Self {
        self.dedup_slots = Some(slots);
        self
    }

    /// Spacing between recovery probes while degraded (default from
    /// `MLKV_HEALTH_PROBE_MS`; zero probes on every tick).
    pub fn probe_interval(mut self, interval: Duration) -> Self {
        self.probe_interval = Some(interval);
        self
    }

    /// The `retry_after` hint (ms) carried by `Unavailable` rejections while
    /// the server is degraded.
    pub fn unavailable_retry_after_ms(mut self, ms: u64) -> Self {
        self.unavailable_retry_after_ms = Some(ms);
        self
    }

    /// Start as a replica of the server at `addr` (`HOST:PORT`): the server
    /// comes up in [`Role::Replica`], applies the primary's WAL stream, and
    /// refuses client mutations until [`ServerHandle::promote`].
    pub fn replicate_from(mut self, addr: impl Into<String>) -> Self {
        self.replicate_from = Some(addr.into());
        self
    }

    /// Primary-side acknowledgement mode (default [`ReplicationMode::Async`],
    /// overridable by `MLKV_REPLICATION_MODE` when env overrides apply).
    /// Setting any mode also attaches a [`WalTap`] to the store so replicas
    /// can stream from this server.
    pub fn replication_mode(mut self, mode: ReplicationMode) -> Self {
        self.replication_mode = Some(mode);
        self
    }

    /// Replication tuning (tap retention, ack timeout, heartbeat); default
    /// from the `MLKV_REPLICATION_*` environment knobs.
    pub fn replication_tuning(mut self, tuning: ReplicationTuning) -> Self {
        self.replication_tuning = Some(tuning);
        self
    }

    /// Whether this build participates in replication at all (as primary
    /// source, as replica, or because the environment turned it on).
    fn replication_enabled(&self) -> bool {
        self.replicate_from.is_some()
            || self.replication_mode.is_some()
            || (self.env_overrides && ReplicationMode::from_env().is_some())
    }

    fn effective_replication_tuning(&self) -> ReplicationTuning {
        self.replication_tuning.unwrap_or_else(|| {
            if self.env_overrides {
                ReplicationTuning::from_env()
            } else {
                ReplicationTuning::default()
            }
        })
    }

    fn effective_replication_mode(&self) -> ReplicationMode {
        self.replication_mode
            .or_else(|| {
                if self.env_overrides {
                    ReplicationMode::from_env()
                } else {
                    None
                }
            })
            .unwrap_or(ReplicationMode::Async)
    }

    fn build_table(&self) -> StorageResult<Arc<EmbeddingTable>> {
        if let Some(table) = &self.table {
            return Ok(Arc::clone(table));
        }
        let mut config = match &self.dir {
            Some(dir) => StoreConfig::on_disk(dir.clone()),
            None => StoreConfig::in_memory(),
        };
        if let Some(bytes) = self.memory_budget {
            config = config.with_memory_budget(bytes);
        }
        if let Some(bytes) = self.page_size {
            config = config.with_page_size(bytes);
        }
        if let Some(workers) = self.parallelism {
            config = config.with_parallelism(workers);
        }
        if let Some(shards) = self.write_shards {
            config = config.with_write_shards(shards);
        }
        if let Some(backend) = self.io_backend {
            config = config.with_io_backend(backend);
        }
        if let Some(depth) = self.io_queue_depth {
            config = config.with_io_queue_depth(depth);
        }
        if let Some(mode) = self.durability {
            config = config.with_durability(mode);
        }
        if self.env_overrides {
            config = config.apply_env_overrides();
        }
        if self.replication_enabled() {
            // Attach the tap replicas stream from. A replica gets one too:
            // replicated groups re-logged in its own WAL publish into it, so
            // a promoted replica can in turn serve downstream replicas.
            let retention = self.effective_replication_tuning().retention_groups;
            config = config.with_wal_tap(Arc::new(WalTap::new(retention)));
        }
        let store = mlkv::open_store(self.backend, config)?;
        let table = EmbeddingTable::builder(store)
            .dim(self.dim)
            .staleness_bound(self.staleness_bound)
            .seed(self.seed)
            .build()?;
        Ok(Arc::new(table))
    }

    /// Bind `addr`, spawn the accept and batcher threads, and return the
    /// running server's handle.
    pub fn serve(self, addr: impl std::net::ToSocketAddrs) -> StorageResult<ServerHandle> {
        let table = self.build_table()?;
        let metrics = table.store().metrics();
        let queue = Arc::new(AdmissionQueue::new(self.queue_capacity));
        let listener = TcpListener::bind(addr).map_err(StorageError::Io)?;
        let local_addr = listener.local_addr().map_err(StorageError::Io)?;

        let tuning = if self.env_overrides {
            FaultTuning::from_env()
        } else {
            FaultTuning::default()
        };
        // By default the `retry_after` hint matches the probe spacing: there
        // is no point retrying before the server even tries to heal.
        let health = Arc::new(Health::new(
            self.unavailable_retry_after_ms
                .unwrap_or(tuning.probe_interval_ms),
            self.probe_interval
                .unwrap_or(Duration::from_millis(tuning.probe_interval_ms)),
            Arc::clone(&metrics),
        ));
        let dedup = Arc::new(DedupWindow::new(
            self.dedup_slots.unwrap_or(tuning.dedup_slots),
        ));
        // Rebuild the idempotency window from the durable markers, so retries
        // that land on a restarted server are still deduplicated.
        dedup.recover(table.store().as_ref());

        let repl_tuning = self.effective_replication_tuning();
        let repl_mode = self.effective_replication_mode();
        let repl = Arc::new(ReplicationHub::new(
            table.store().replication_tap(),
            Arc::clone(&metrics),
            repl_tuning,
        ));
        let repl_client = match &self.replicate_from {
            Some(primary) => {
                health.set_role(Role::Replica);
                Some(ReplicationClient::spawn(
                    primary.clone(),
                    Arc::clone(table.store()),
                    Arc::clone(&metrics),
                    repl_tuning,
                ))
            }
            None => None,
        };

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            queue: Arc::clone(&queue),
            metrics: Arc::clone(&metrics),
            conns: Mutex::new(Vec::new()),
            local_addr,
            health: Arc::clone(&health),
            store: Arc::clone(table.store()),
            repl: Arc::clone(&repl),
        });

        let batcher = Batcher::new(
            Arc::clone(&table),
            Arc::clone(&queue),
            Arc::clone(&metrics),
            &self.batcher,
            Arc::clone(&health),
            Arc::clone(&dedup),
        )
        .with_replication(Arc::clone(&repl), repl_mode);
        let batcher_thread = thread::Builder::new()
            .name("mlkv-batcher".into())
            .spawn(move || batcher.run())
            .map_err(StorageError::Io)?;

        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("mlkv-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, batcher_thread))
            .map_err(StorageError::Io)?;

        Ok(ServerHandle {
            shared,
            accept: Mutex::new(Some(accept_thread)),
            table,
            dedup,
            repl_client: Mutex::new(repl_client),
        })
    }
}

struct Shared {
    shutdown: AtomicBool,
    queue: Arc<AdmissionQueue>,
    metrics: Arc<StorageMetrics>,
    /// Read halves of live connections keyed by connection id, kept so
    /// teardown can unblock their blocking `read_frame` via
    /// `TcpStream::shutdown`. A connection thread removes its own entry on
    /// exit — the socket then closes as soon as the last reply writer drops,
    /// so departed clients see FIN promptly and dead fds don't accumulate.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    local_addr: SocketAddr,
    health: Arc<Health>,
    /// The served store, handed to replication streams for snapshot
    /// catch-up.
    store: Arc<dyn KvStore>,
    repl: Arc<ReplicationHub>,
}

impl Shared {
    /// Flip the shutdown flag, close admission, and poke the accept loop.
    /// Safe to call from any thread (including connection threads): teardown
    /// itself happens on the accept thread.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.health.set_draining();
        self.queue.close();
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// Handle to a running server: its address, its table, and shutdown.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Mutex<Option<JoinHandle<StorageResult<()>>>>,
    table: Arc<EmbeddingTable>,
    dedup: Arc<DedupWindow>,
    repl_client: Mutex<Option<ReplicationClient>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The table being served.
    pub fn table(&self) -> &Arc<EmbeddingTable> {
        &self.table
    }

    /// Serving metrics (admitted/rejected counters, fused keys, window).
    pub fn metrics(&self) -> &Arc<StorageMetrics> {
        &self.shared.metrics
    }

    /// Current health state (`Serving`, `Degraded`, or `Draining`).
    pub fn health(&self) -> HealthState {
        self.shared.health.state()
    }

    /// Current replication role (`Primary` or `Replica`).
    pub fn role(&self) -> Role {
        self.shared.health.role()
    }

    /// Number of replica streams currently attached to this server.
    pub fn replica_count(&self) -> usize {
        self.shared.repl.replica_count()
    }

    /// Promote this replica to primary: stop the replication pump, rebuild
    /// the idempotency dedup window from the replicated durable session
    /// markers (exactly as restart recovery does, so in-flight client retries
    /// dedup across the failover), and flip to [`Role::Primary`]. Idempotent;
    /// a no-op on a server that is already primary.
    pub fn promote(&self) -> StorageResult<()> {
        if self.shared.health.role() == Role::Primary {
            return Ok(());
        }
        let client = self
            .repl_client
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(client) = client {
            client.stop();
        }
        self.dedup.recover(self.table.store().as_ref());
        self.shared.health.set_role(Role::Primary);
        self.shared.metrics.record_repl_promotion();
        Ok(())
    }

    /// Abrupt termination for failover tests: sever every client connection
    /// *first* — so no acknowledgement written after this point can reach a
    /// client — then tear the server down. From a client's perspective this
    /// is indistinguishable from the process dying mid-run.
    pub fn kill(&self) {
        let client = self
            .repl_client
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(client) = client {
            client.stop();
        }
        for (_, conn) in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        self.shared.begin_shutdown();
        let handle = self.accept.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Gracefully stop: close admission, drain in-flight batches, flush the
    /// table, close connections, join every thread. Idempotent; returns the
    /// batcher's flush result.
    pub fn shutdown(&self) -> StorageResult<()> {
        let client = self
            .repl_client
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(client) = client {
            client.stop();
        }
        self.shared.begin_shutdown();
        let handle = self.accept.lock().unwrap_or_else(|e| e.into_inner()).take();
        match handle {
            Some(h) => h.join().unwrap_or_else(|_| {
                Err(StorageError::Io(io::Error::other(
                    "server accept thread panicked",
                )))
            }),
            None => Ok(()),
        }
    }

    /// Block until the server stops on its own (e.g. a client sent a
    /// `Shutdown` frame). Equivalent to `shutdown()` without initiating it.
    pub fn join(&self) -> StorageResult<()> {
        let handle = self.accept.lock().unwrap_or_else(|e| e.into_inner()).take();
        match handle {
            Some(h) => h.join().unwrap_or_else(|_| {
                Err(StorageError::Io(io::Error::other(
                    "server accept thread panicked",
                )))
            }),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Accept loop; owns teardown so joins never run on a connection thread.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    batcher: JoinHandle<Result<(), StorageError>>,
) -> StorageResult<()> {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn_id: u64 = 0;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let read_half = match stream.try_clone() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((conn_id, read_half));
        let conn_shared = Arc::clone(&shared);
        if let Ok(h) = thread::Builder::new()
            .name("mlkv-conn".into())
            .spawn(move || connection_loop(conn_id, stream, conn_shared))
        {
            conn_threads.push(h);
        }
    }
    drop(listener);

    // Drain: the queue is closed, so the batcher finishes everything already
    // admitted, replies, and flushes the table before exiting.
    let flush_result = batcher.join().unwrap_or_else(|_| {
        Err(StorageError::Io(io::Error::other(
            "batcher thread panicked",
        )))
    });

    // Only now unblock readers and join connection threads; replies for
    // drained work have already been written.
    for (_, conn) in shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    for h in conn_threads {
        let _ = h.join();
    }
    flush_result
}

/// Per-connection thread body: run the frame loop, then retire this
/// connection's teardown handle. Without the removal the clone registered in
/// `Shared::conns` would keep the socket open after the thread exits, so a
/// peer that triggered a malformed-frame close would block forever waiting
/// for FIN (and every dead connection would leak an fd until shutdown).
fn connection_loop(conn_id: u64, stream: TcpStream, shared: Arc<Shared>) {
    connection_frames(stream, &shared);
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|(id, _)| *id != conn_id);
}

/// Per-connection read loop: decode a frame, dispatch, repeat until EOF,
/// error, or shutdown.
fn connection_frames(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    // Writer shared between this thread (inline replies) and the batcher
    // (scattered replies), serialised frame-at-a-time.
    let writer: Arc<Mutex<TcpStream>> = Arc::new(Mutex::new(stream));

    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean EOF
            Err(_) => return,   // disconnect or oversized frame
        };
        let request = match Request::decode(&body) {
            Ok(r) => r,
            Err(err) => {
                // Malformed payload inside a well-framed message: answer with
                // a typed error, then drop the connection — after a decode
                // failure the stream cannot be trusted to stay aligned.
                send(
                    &writer,
                    &Response::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        message: err.to_string(),
                    },
                );
                return;
            }
        };
        match request {
            Request::Ping => {
                if !send(&writer, &Response::Pong) {
                    return;
                }
            }
            Request::Shutdown => {
                send(&writer, &Response::ShutdownStarted);
                shared.begin_shutdown();
                return;
            }
            Request::Gather {
                id,
                deadline_us,
                keys,
            } => {
                dispatch(shared, &writer, id, 0, deadline_us, Work::Gather { keys });
            }
            Request::Apply {
                id,
                session_id,
                deadline_us,
                lr,
                updates,
                ..
            } => {
                dispatch(
                    shared,
                    &writer,
                    id,
                    session_id,
                    deadline_us,
                    Work::Apply { lr, updates },
                );
            }
            Request::ReplHandshake { applied } => {
                // The connection stops being request/response and becomes a
                // replication stream until the replica detaches.
                shared.repl.serve_replica(
                    reader,
                    writer,
                    Arc::clone(&shared.store),
                    applied,
                    &shared.shutdown,
                );
                return;
            }
            Request::ReplAck { .. } => {
                // Acks are only meaningful inside a stream (where the hub's
                // ack reader consumes them); stray ones poison the framing.
                send(
                    &writer,
                    &Response::Error {
                        id: 0,
                        code: ErrorCode::InvalidArgument,
                        message: "replication ack outside a replication stream".into(),
                    },
                );
                return;
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Offer one request to the admission queue; on rejection answer inline with
/// the typed error.
fn dispatch(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    id: u64,
    session_id: u64,
    deadline_us: u64,
    work: Work,
) {
    // The top of the key space belongs to the server (dedup markers, health
    // probes); a client request touching it could forge or clobber an
    // acknowledgement marker, so it is refused outright.
    let touches_reserved = match &work {
        Work::Gather { keys } => keys.iter().copied().any(is_reserved_key),
        Work::Apply { updates, .. } => updates.iter().any(|(k, _)| is_reserved_key(*k)),
    };
    if touches_reserved {
        shared.metrics.record_serve_rejected();
        let err = StorageError::InvalidArgument(format!(
            "keys at or above {:#x} are reserved for server metadata",
            crate::dedup::RESERVED_KEY_BASE
        ));
        let (code, message) = encode_error(&err);
        send(writer, &Response::Error { id, code, message });
        return;
    }
    let deadline = (deadline_us > 0).then(|| Instant::now() + Duration::from_micros(deadline_us));
    let reply_writer = Arc::clone(writer);
    let pending = Pending {
        id,
        session_id,
        deadline_us,
        deadline,
        work,
        reply: Box::new(move |response| {
            send(&reply_writer, &response);
        }),
    };
    match shared.queue.offer(pending) {
        Ok(()) => shared.metrics.record_serve_admitted(),
        Err((rejected, err)) => {
            shared.metrics.record_serve_rejected();
            let (code, message) = encode_error(&err);
            send(
                writer,
                &Response::Error {
                    id: rejected.id,
                    code,
                    message,
                },
            );
        }
    }
}

/// Write one response frame; false when the peer is gone.
fn send(writer: &Arc<Mutex<TcpStream>>, response: &Response) -> bool {
    let body = response.encode();
    let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
    write_frame(&mut *guard, &body)
        .and_then(|()| guard.flush())
        .is_ok()
}
