//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every frame is a little-endian `u32` body length followed by the body; the
//! body's first byte is the opcode, the rest is the opcode's payload. All
//! integers are little-endian, all floats are IEEE-754 `f32` bit patterns.
//!
//! ```text
//! +----------+--------+-----------------+
//! | len: u32 | op: u8 | payload (len-1) |
//! +----------+--------+-----------------+
//! ```
//!
//! Request payloads:
//!
//! * `PING` — empty.
//! * `GATHER` — `id: u64, deadline_us: u64, nkeys: u32, keys: nkeys × u64`.
//! * `APPLY` — `id: u64, session_id: u64, deadline_us: u64, lr: f32,
//!   dim: u32, n: u32,` then `n × (key: u64, grad: dim × f32)`.
//! * `SHUTDOWN` — empty.
//!
//! `session_id` identifies the client's idempotency session (`0` = none):
//! the server remembers the highest `id` it acknowledged per session, so a
//! retried `APPLY` that was already applied is acknowledged from that window
//! instead of being applied twice. Within a session, request ids must be
//! unique and increasing for mutations.
//!
//! `deadline_us` is the request's latency budget in microseconds measured
//! from server receipt (`0` = no deadline). A request whose budget expires
//! while queued is rejected with [`ErrorCode::DeadlineExceeded`] instead of
//! occupying a micro-batch.
//!
//! Response payloads mirror the requests: `ROWS` carries
//! `id: u64, dim: u32, nrows: u32, rows: nrows × dim × f32`; `APPLIED` and
//! `ERROR` echo the request id (`ERROR` adds a one-byte [`ErrorCode`] and a
//! UTF-8 message). Responses to one connection are written in admission
//! order, but a pipelining client must use the echoed id, not arrival order,
//! to match responses to requests across opcodes.

use std::io::{self, Read, Write};

use mlkv_storage::StorageError;

/// Upper bound on one frame's body, guarding the length prefix against
/// malformed (or malicious) headers: a 16 M-row gather of dimension 64 still
/// fits, while a corrupt length can never trigger a multi-gigabyte
/// allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Request opcodes (high bit clear).
const OP_PING: u8 = 0x01;
const OP_GATHER: u8 = 0x02;
const OP_APPLY: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_REPL_HANDSHAKE: u8 = 0x10;
const OP_REPL_ACK: u8 = 0x11;

/// Response opcodes (high bit set).
const OP_PONG: u8 = 0x81;
const OP_ROWS: u8 = 0x82;
const OP_APPLIED: u8 = 0x83;
const OP_SHUTDOWN_STARTED: u8 = 0x84;
const OP_ERROR: u8 = 0x8F;
const OP_REPL_START: u8 = 0x90;
const OP_REPL_APPEND: u8 = 0x91;
const OP_REPL_SNAPSHOT: u8 = 0x92;

/// Typed rejection codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request's deadline budget expired before execution.
    DeadlineExceeded = 1,
    /// The admission queue was full; the request was shed, not queued.
    Overloaded = 2,
    /// The frame did not decode (unknown opcode, truncated payload,
    /// oversized length prefix).
    Malformed = 3,
    /// The storage engine failed the fused batch this request rode in
    /// (an I/O-level fault; carries the engine's message).
    Storage = 4,
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown = 5,
    /// The server is temporarily read-only (degraded after a write-path
    /// fault) but expects to recover; retry after the advertised backoff.
    Unavailable = 6,
    /// The requested key does not exist.
    NotFound = 7,
    /// The engine detected on-disk corruption executing this request.
    Corruption = 8,
    /// The request was semantically invalid (bad dimension, reserved key).
    InvalidArgument = 9,
    /// A bounded-staleness wait timed out.
    StalenessTimeout = 10,
    /// A checkpoint or recovery step failed.
    CheckpointFailed = 11,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_wire(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(Self::DeadlineExceeded),
            2 => Some(Self::Overloaded),
            3 => Some(Self::Malformed),
            4 => Some(Self::Storage),
            5 => Some(Self::ShuttingDown),
            6 => Some(Self::Unavailable),
            7 => Some(Self::NotFound),
            8 => Some(Self::Corruption),
            9 => Some(Self::InvalidArgument),
            10 => Some(Self::StalenessTimeout),
            11 => Some(Self::CheckpointFailed),
            _ => None,
        }
    }

    /// The wire code for a [`StorageError`] (the classification half of
    /// [`encode_error`]).
    pub fn for_error(err: &StorageError) -> Self {
        match err {
            StorageError::Io(_) => Self::Storage,
            StorageError::KeyNotFound => Self::NotFound,
            StorageError::Corruption(_) => Self::Corruption,
            StorageError::InvalidArgument(_) => Self::InvalidArgument,
            StorageError::Closed => Self::ShuttingDown,
            StorageError::StalenessTimeout { .. } => Self::StalenessTimeout,
            StorageError::Checkpoint(_) => Self::CheckpointFailed,
            StorageError::DeadlineExceeded { .. } => Self::DeadlineExceeded,
            StorageError::Overloaded { .. } => Self::Overloaded,
            StorageError::Unavailable { .. } => Self::Unavailable,
        }
    }
}

/// Map a [`StorageError`] onto the wire as `(code, message)` so that
/// [`decode_error`] on the other side reconstructs the same variant with the
/// same payload. Every variant has a code of its own; structured payloads
/// (deadlines, queue depths, retry hints) travel inside the message and are
/// re-parsed on decode.
pub fn encode_error(err: &StorageError) -> (ErrorCode, String) {
    let message = match err {
        // String payloads travel verbatim so decode is lossless.
        StorageError::Corruption(msg)
        | StorageError::InvalidArgument(msg)
        | StorageError::Checkpoint(msg) => msg.clone(),
        other => other.to_string(),
    };
    (ErrorCode::for_error(err), message)
}

/// Inverse of [`encode_error`]: rebuild the typed [`StorageError`] a server
/// sent as `(code, message)`. Numeric payloads are parsed back out of the
/// message; a message that lost them decodes to the variant's zero values
/// rather than collapsing to an opaque error, so retry classification always
/// survives the wire. [`ErrorCode::Malformed`] has no `StorageError` source
/// (the server raises it for frames that never decoded) and comes back as
/// [`StorageError::InvalidArgument`].
pub fn decode_error(code: ErrorCode, message: &str) -> StorageError {
    let uints = || -> Vec<u64> {
        message
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect()
    };
    match code {
        ErrorCode::DeadlineExceeded => StorageError::DeadlineExceeded {
            deadline_us: uints().first().copied().unwrap_or(0),
        },
        ErrorCode::Overloaded => {
            let nums = uints();
            StorageError::Overloaded {
                depth: nums.first().copied().unwrap_or(0) as usize,
                capacity: nums.get(1).copied().unwrap_or(0) as usize,
            }
        }
        ErrorCode::Unavailable => StorageError::Unavailable {
            retry_after_ms: uints().first().copied().unwrap_or(0),
        },
        ErrorCode::StalenessTimeout => {
            let nums = uints();
            StorageError::StalenessTimeout {
                key: nums.first().copied().unwrap_or(0),
                bound: nums.get(1).copied().unwrap_or(0) as u32,
            }
        }
        ErrorCode::NotFound => StorageError::KeyNotFound,
        ErrorCode::ShuttingDown => StorageError::Closed,
        ErrorCode::Corruption => StorageError::Corruption(message.to_string()),
        ErrorCode::InvalidArgument => StorageError::InvalidArgument(message.to_string()),
        ErrorCode::CheckpointFailed => StorageError::Checkpoint(message.to_string()),
        ErrorCode::Storage => StorageError::Io(io::Error::other(format!("server: {message}"))),
        ErrorCode::Malformed => StorageError::InvalidArgument(format!("server: {message}")),
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe, answered inline by the connection (never queued).
    Ping,
    /// Fetch embeddings for `keys` (order preserved, duplicates allowed).
    Gather {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// Latency budget in microseconds from receipt; `0` = none.
        deadline_us: u64,
        /// Keys to fetch.
        keys: Vec<u64>,
    },
    /// Apply SGD-style gradients: `value -= lr * grad` per pair.
    Apply {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// Idempotency session this mutation belongs to (`0` = none): a
        /// retry carrying a `(session_id, id)` the server already
        /// acknowledged is answered from its dedup window, not re-applied.
        session_id: u64,
        /// Latency budget in microseconds from receipt; `0` = none.
        deadline_us: u64,
        /// Learning rate.
        lr: f32,
        /// Gradient dimension (every gradient must have this length).
        dim: u32,
        /// `(key, gradient)` pairs, applied cumulatively in order.
        updates: Vec<(u64, Vec<f32>)>,
    },
    /// Begin graceful shutdown: drain queued work, fsync, close listeners.
    Shutdown,
    /// A replica attaching to this server's WAL stream. The connection
    /// switches from request/response into replication streaming: the server
    /// answers with optional [`Response::ReplSnapshot`] catch-up chunks, then
    /// [`Response::ReplStart`], then an open-ended sequence of
    /// [`Response::ReplAppend`] frames.
    ReplHandshake {
        /// Global frame ordinal the replica has durably applied; the stream
        /// resumes at (or before — re-application is idempotent) this point.
        applied: u64,
    },
    /// Replica → primary progress report on an open replication stream; also
    /// doubles as the replica's heartbeat.
    ReplAck {
        /// Global frame ordinal the replica has durably applied.
        applied: u64,
    },
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Gather`].
    Rows {
        /// Echo of the request id.
        id: u64,
        /// Row dimension.
        dim: u32,
        /// One row per requested key, in request order.
        rows: Vec<Vec<f32>>,
    },
    /// Answer to [`Request::Apply`].
    Applied {
        /// Echo of the request id.
        id: u64,
    },
    /// Answer to [`Request::Shutdown`]: the drain has begun.
    ShutdownStarted,
    /// Typed rejection or failure.
    Error {
        /// Echo of the request id (`0` when the frame itself was malformed).
        id: u64,
        /// Rejection class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::ReplHandshake`] (after any snapshot chunks):
    /// appends will stream from `resume_from`. The replica adopts
    /// `resume_from` as its applied offset.
    ReplStart {
        /// First global frame ordinal the append stream covers.
        resume_from: u64,
    },
    /// One acknowledged WAL group, shipped verbatim: the frame payloads of
    /// one group-commit window, in append order.
    ReplAppend {
        /// Global ordinal of `frames[0]`.
        offset: u64,
        /// The group's WAL record payloads (no framing headers — those are
        /// re-added by the replica's own WAL when it re-logs the ops).
        frames: Vec<Vec<u8>>,
    },
    /// One chunk of state-transfer catch-up, sent when the replica's applied
    /// offset has fallen behind the primary's in-memory WAL retention. Pairs
    /// are raw `(key, value)` store entries; installing every chunk and then
    /// adopting the accompanying [`Response::ReplStart`] offset is equivalent
    /// to having replayed all frames below it.
    ReplSnapshot {
        /// The append stream will resume here once all chunks are installed.
        resume_from: u64,
        /// Raw store entries for this chunk.
        pairs: Vec<(u64, Vec<u8>)>,
    },
}

/// Why a frame body failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The body ended before the payload its opcode promises.
    Truncated,
    /// The first body byte is not a known opcode.
    UnknownOpcode(u8),
    /// The payload is longer than its opcode consumes.
    TrailingBytes(usize),
    /// A count field implies a payload larger than [`MAX_FRAME_BYTES`].
    Oversized,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame body truncated"),
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            FrameError::Oversized => write!(f, "count field exceeds frame limit"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Little-endian cursor over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Oversized)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, FrameError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn finish(self) -> Result<(), FrameError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes(left))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

/// Reject count fields that promise more payload than the frame cap allows,
/// before any allocation is sized from them.
fn check_count(count: usize, elem_bytes: usize) -> Result<(), FrameError> {
    if count.saturating_mul(elem_bytes) > MAX_FRAME_BYTES {
        Err(FrameError::Oversized)
    } else {
        Ok(())
    }
}

impl Request {
    /// Encode this request as a frame body (opcode + payload, no length
    /// prefix; [`write_frame`] adds it).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => vec![OP_PING],
            Request::Gather {
                id,
                deadline_us,
                keys,
            } => {
                let mut out = Vec::with_capacity(1 + 8 + 8 + 4 + keys.len() * 8);
                out.push(OP_GATHER);
                put_u64(&mut out, *id);
                put_u64(&mut out, *deadline_us);
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_u64(&mut out, *k);
                }
                out
            }
            Request::Apply {
                id,
                session_id,
                deadline_us,
                lr,
                dim,
                updates,
            } => {
                let row = 8 + *dim as usize * 4;
                let mut out = Vec::with_capacity(1 + 8 + 8 + 8 + 4 + 4 + 4 + updates.len() * row);
                out.push(OP_APPLY);
                put_u64(&mut out, *id);
                put_u64(&mut out, *session_id);
                put_u64(&mut out, *deadline_us);
                put_f32(&mut out, *lr);
                put_u32(&mut out, *dim);
                put_u32(&mut out, updates.len() as u32);
                for (key, grad) in updates {
                    put_u64(&mut out, *key);
                    for g in grad {
                        put_f32(&mut out, *g);
                    }
                }
                out
            }
            Request::Shutdown => vec![OP_SHUTDOWN],
            Request::ReplHandshake { applied } => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_REPL_HANDSHAKE);
                put_u64(&mut out, *applied);
                out
            }
            Request::ReplAck { applied } => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_REPL_ACK);
                put_u64(&mut out, *applied);
                out
            }
        }
    }

    /// Decode a frame body into a request.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(body);
        let op = c.u8()?;
        let req = match op {
            OP_PING => Request::Ping,
            OP_SHUTDOWN => Request::Shutdown,
            OP_REPL_HANDSHAKE => Request::ReplHandshake { applied: c.u64()? },
            OP_REPL_ACK => Request::ReplAck { applied: c.u64()? },
            OP_GATHER => {
                let id = c.u64()?;
                let deadline_us = c.u64()?;
                let nkeys = c.u32()? as usize;
                check_count(nkeys, 8)?;
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    keys.push(c.u64()?);
                }
                Request::Gather {
                    id,
                    deadline_us,
                    keys,
                }
            }
            OP_APPLY => {
                let id = c.u64()?;
                let session_id = c.u64()?;
                let deadline_us = c.u64()?;
                let lr = c.f32()?;
                let dim = c.u32()?;
                let n = c.u32()? as usize;
                check_count(n, 8 + dim as usize * 4)?;
                let mut updates = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = c.u64()?;
                    let mut grad = Vec::with_capacity(dim as usize);
                    for _ in 0..dim {
                        grad.push(c.f32()?);
                    }
                    updates.push((key, grad));
                }
                Request::Apply {
                    id,
                    session_id,
                    deadline_us,
                    lr,
                    dim,
                    updates,
                }
            }
            other => return Err(FrameError::UnknownOpcode(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode this response as a frame body (opcode + payload).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => vec![OP_PONG],
            Response::ShutdownStarted => vec![OP_SHUTDOWN_STARTED],
            Response::Applied { id } => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_APPLIED);
                put_u64(&mut out, *id);
                out
            }
            Response::Rows { id, dim, rows } => {
                let mut out = Vec::with_capacity(1 + 8 + 4 + 4 + rows.len() * *dim as usize * 4);
                out.push(OP_ROWS);
                put_u64(&mut out, *id);
                put_u32(&mut out, *dim);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    debug_assert_eq!(row.len(), *dim as usize);
                    for v in row {
                        put_f32(&mut out, *v);
                    }
                }
                out
            }
            Response::Error { id, code, message } => {
                let msg = message.as_bytes();
                let mut out = Vec::with_capacity(1 + 8 + 1 + 4 + msg.len());
                out.push(OP_ERROR);
                put_u64(&mut out, *id);
                out.push(*code as u8);
                put_u32(&mut out, msg.len() as u32);
                out.extend_from_slice(msg);
                out
            }
            Response::ReplStart { resume_from } => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_REPL_START);
                put_u64(&mut out, *resume_from);
                out
            }
            Response::ReplAppend { offset, frames } => {
                let body: usize = frames.iter().map(|f| 4 + f.len()).sum();
                let mut out = Vec::with_capacity(1 + 8 + 4 + body);
                out.push(OP_REPL_APPEND);
                put_u64(&mut out, *offset);
                put_u32(&mut out, frames.len() as u32);
                for frame in frames {
                    put_u32(&mut out, frame.len() as u32);
                    out.extend_from_slice(frame);
                }
                out
            }
            Response::ReplSnapshot { resume_from, pairs } => {
                let body: usize = pairs.iter().map(|(_, v)| 12 + v.len()).sum();
                let mut out = Vec::with_capacity(1 + 8 + 4 + body);
                out.push(OP_REPL_SNAPSHOT);
                put_u64(&mut out, *resume_from);
                put_u32(&mut out, pairs.len() as u32);
                for (key, value) in pairs {
                    put_u64(&mut out, *key);
                    put_u32(&mut out, value.len() as u32);
                    out.extend_from_slice(value);
                }
                out
            }
        }
    }

    /// Decode a frame body into a response.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(body);
        let op = c.u8()?;
        let resp = match op {
            OP_PONG => Response::Pong,
            OP_SHUTDOWN_STARTED => Response::ShutdownStarted,
            OP_APPLIED => Response::Applied { id: c.u64()? },
            OP_ROWS => {
                let id = c.u64()?;
                let dim = c.u32()?;
                let nrows = c.u32()? as usize;
                check_count(nrows, dim as usize * 4)?;
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(dim as usize);
                    for _ in 0..dim {
                        row.push(c.f32()?);
                    }
                    rows.push(row);
                }
                Response::Rows { id, dim, rows }
            }
            OP_ERROR => {
                let id = c.u64()?;
                let code =
                    ErrorCode::from_wire(c.u8()?).ok_or(FrameError::UnknownOpcode(OP_ERROR))?;
                let len = c.u32()? as usize;
                check_count(len, 1)?;
                let message = String::from_utf8_lossy(c.take(len)?).into_owned();
                Response::Error { id, code, message }
            }
            OP_REPL_START => Response::ReplStart {
                resume_from: c.u64()?,
            },
            OP_REPL_APPEND => {
                let offset = c.u64()?;
                let n = c.u32()? as usize;
                check_count(n, 4)?;
                let mut frames = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = c.u32()? as usize;
                    check_count(len, 1)?;
                    frames.push(c.take(len)?.to_vec());
                }
                Response::ReplAppend { offset, frames }
            }
            OP_REPL_SNAPSHOT => {
                let resume_from = c.u64()?;
                let n = c.u32()? as usize;
                check_count(n, 12)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = c.u64()?;
                    let len = c.u32()? as usize;
                    check_count(len, 1)?;
                    pairs.push((key, c.take(len)?.to_vec()));
                }
                Response::ReplSnapshot { resume_from, pairs }
            }
            other => return Err(FrameError::UnknownOpcode(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Write one frame: length prefix plus body. One `write_all` per frame, so
/// concurrent writers (connection thread answering pings, batcher thread
/// scattering results) interleave only at frame granularity when they share
/// a lock around the stream.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_BYTES);
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Read one frame body. Returns `Ok(None)` on clean EOF (the peer closed
/// between frames); a close mid-frame surfaces as `UnexpectedEof`, and a
/// length prefix beyond [`MAX_FRAME_BYTES`] as `InvalidData` (the stream is
/// unrecoverable after either — framing is lost).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => r.read_exact(&mut len_buf)?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Gather {
            id: 7,
            deadline_us: 1500,
            keys: vec![1, u64::MAX, 0, 42],
        });
        roundtrip_request(Request::Gather {
            id: 0,
            deadline_us: 0,
            keys: Vec::new(),
        });
        roundtrip_request(Request::Apply {
            id: 9,
            session_id: 0xDEAD_BEEF,
            deadline_us: 0,
            lr: 0.125,
            dim: 3,
            updates: vec![(5, vec![1.0, -2.5, f32::MIN]), (5, vec![0.0, 0.5, 3.25])],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::ShutdownStarted);
        roundtrip_response(Response::Applied { id: 3 });
        roundtrip_response(Response::Rows {
            id: 11,
            dim: 2,
            rows: vec![vec![1.0, 2.0], vec![-0.5, 0.25]],
        });
        roundtrip_response(Response::Error {
            id: 4,
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        });
    }

    #[test]
    fn replication_frames_roundtrip() {
        roundtrip_request(Request::ReplHandshake { applied: 0 });
        roundtrip_request(Request::ReplHandshake { applied: u64::MAX });
        roundtrip_request(Request::ReplAck { applied: 12345 });
        roundtrip_response(Response::ReplStart { resume_from: 99 });
        roundtrip_response(Response::ReplAppend {
            offset: 7,
            frames: vec![vec![1, 2, 3], Vec::new(), vec![0xFF; 64]],
        });
        roundtrip_response(Response::ReplAppend {
            offset: 0,
            frames: Vec::new(),
        });
        roundtrip_response(Response::ReplSnapshot {
            resume_from: 42,
            pairs: vec![(1, b"one".to_vec()), (u64::MAX, Vec::new())],
        });
    }

    #[test]
    fn truncated_replication_bodies_are_typed_errors() {
        let full = Response::ReplAppend {
            offset: 3,
            frames: vec![vec![9, 9], vec![8]],
        }
        .encode();
        for cut in 1..full.len() {
            assert_eq!(
                Response::decode(&full[..cut]),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
        }
        // A frame-length field promising more payload than the cap must fail
        // the count check, not attempt the allocation.
        let mut body = vec![OP_REPL_APPEND];
        put_u64(&mut body, 0);
        put_u32(&mut body, 1);
        put_u32(&mut body, u32::MAX);
        assert_eq!(Response::decode(&body), Err(FrameError::Oversized));
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        let full = Request::Gather {
            id: 1,
            deadline_us: 0,
            keys: vec![1, 2, 3],
        }
        .encode();
        for cut in 1..full.len() {
            assert_eq!(
                Request::decode(&full[..cut]),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
        }
        assert_eq!(Request::decode(&[]), Err(FrameError::Truncated));
    }

    #[test]
    fn unknown_opcode_and_trailing_bytes_are_rejected() {
        assert_eq!(
            Request::decode(&[0x7F]),
            Err(FrameError::UnknownOpcode(0x7F))
        );
        let mut body = Request::Ping.encode();
        body.push(0xAB);
        assert_eq!(Request::decode(&body), Err(FrameError::TrailingBytes(1)));
        assert_eq!(
            Response::decode(&[0x01]),
            Err(FrameError::UnknownOpcode(0x01))
        );
    }

    #[test]
    fn absurd_count_fields_do_not_allocate() {
        // A gather claiming u32::MAX keys in a 17-byte body must fail on the
        // count check, not attempt a 32 GiB Vec::with_capacity.
        let mut body = vec![OP_GATHER];
        put_u64(&mut body, 1);
        put_u64(&mut body, 0);
        put_u32(&mut body, u32::MAX);
        assert_eq!(Request::decode(&body), Err(FrameError::Oversized));
    }

    #[test]
    fn frames_roundtrip_over_a_buffer_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping.encode()).unwrap();
        write_frame(
            &mut buf,
            &Request::Gather {
                id: 2,
                deadline_us: 9,
                keys: vec![8],
            }
            .encode(),
        )
        .unwrap();
        let mut r = &buf[..];
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Ping
        );
        let second = read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(
            Request::decode(&second).unwrap(),
            Request::Gather { id: 2, .. }
        ));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            None,
            "clean EOF between frames"
        );
    }

    #[test]
    fn oversized_length_prefix_is_invalid_data() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn every_storage_error_survives_the_wire() {
        // One witness per StorageError variant, with non-zero payloads so a
        // lossy encode/decode cannot hide behind defaults. A match on one
        // witness keeps this list exhaustive: adding a variant fails to
        // compile until it is covered here.
        let witnesses = vec![
            StorageError::Io(io::Error::new(io::ErrorKind::NotFound, "disk gone")),
            StorageError::KeyNotFound,
            StorageError::Corruption("page 7: bad checksum 0xDEAD".into()),
            StorageError::InvalidArgument("dim 16 != table dim 8".into()),
            StorageError::Closed,
            StorageError::StalenessTimeout { key: 99, bound: 3 },
            StorageError::Checkpoint("manifest write failed: 12".into()),
            StorageError::DeadlineExceeded { deadline_us: 1500 },
            StorageError::Overloaded {
                depth: 128,
                capacity: 64,
            },
            StorageError::Unavailable { retry_after_ms: 40 },
        ];
        match &witnesses[0] {
            StorageError::Io(_)
            | StorageError::KeyNotFound
            | StorageError::Corruption(_)
            | StorageError::InvalidArgument(_)
            | StorageError::Closed
            | StorageError::StalenessTimeout { .. }
            | StorageError::Checkpoint(_)
            | StorageError::DeadlineExceeded { .. }
            | StorageError::Overloaded { .. }
            | StorageError::Unavailable { .. } => {}
        }
        for err in witnesses {
            let (code, message) = encode_error(&err);
            // Ride a full Error response frame, as the server would send it.
            let mut buf = Vec::new();
            write_frame(
                &mut buf,
                &Response::Error {
                    id: 7,
                    code,
                    message: message.clone(),
                }
                .encode(),
            )
            .unwrap();
            let frame = read_frame(&mut &buf[..]).unwrap().unwrap();
            let Response::Error {
                id,
                code: got_code,
                message: got_message,
            } = Response::decode(&frame).unwrap()
            else {
                panic!("expected Error response");
            };
            assert_eq!(id, 7);
            assert_eq!(got_code, code);
            let decoded = decode_error(got_code, &got_message);
            match (&err, &decoded) {
                // Io carries a live io::Error, so equality is structural:
                // same variant, message preserved inside the decoded error.
                (StorageError::Io(e), StorageError::Io(d)) => {
                    assert!(d.to_string().contains(&e.to_string()), "{d} vs {e}");
                }
                _ => assert_eq!(
                    format!("{err:?}"),
                    format!("{decoded:?}"),
                    "variant lost payload over the wire"
                ),
            }
        }
    }

    #[test]
    fn mid_frame_eof_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping.encode()).unwrap();
        buf.truncate(buf.len() - 1);
        // Header promises one byte more than the stream carries.
        buf[0..4].copy_from_slice(&2u32.to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
