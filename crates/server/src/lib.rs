//! Embedding-serving front end for the MLKV reproduction.
//!
//! MLKV's engine is batch-first: one `gather` over many keys amortises index
//! probes, cold-path I/O, and executor dispatch. A serving tier talking to it
//! one request at a time throws that away. This crate restores it across
//! clients:
//!
//! * [`protocol`] — a length-prefixed little-endian binary protocol over TCP
//!   carrying `gather` / `apply_gradients` / `ping` / `shutdown` frames, each
//!   request with an id and a microsecond deadline budget;
//! * [`queue::AdmissionQueue`] — a bounded queue where deadline-expired work
//!   is rejected with [`mlkv_storage::StorageError::DeadlineExceeded`] and
//!   overflow is shed with [`mlkv_storage::StorageError::Overloaded`];
//! * [`batcher::Batcher`] — one thread that closes micro-batch windows and
//!   issues a single fused `multi_get` / `multi_rmw`-backed table call per
//!   tick, scattering rows back to the originating connections; the window
//!   is sized by [`batcher::AdaptiveWindow`], the same feedback-clamp loop
//!   the trainer uses for prefetch depth;
//! * [`server::ServerBuilder`] / [`server::ServerHandle`] — the TCP listener
//!   plumbed to every [`mlkv_storage::StoreConfig`] knob (backend,
//!   parallelism, I/O backend, durability), with graceful shutdown that
//!   drains admitted work and flushes through the WAL path;
//! * [`client::Client`] — a blocking client that surfaces server rejections
//!   as the same typed errors, with deadline-budgeted retries, automatic
//!   reconnect, and idempotent sessions ([`client::ClientOptions`]).
//!
//! The serving path is fault tolerant end to end:
//!
//! * [`dedup`] — exactly-once mutations: per-session dedup window plus
//!   durable markers riding the same fused batch as the gradients they
//!   acknowledge, recovered from the store on restart;
//! * [`health`] — `Serving → Degraded(read-only) → Serving` degradation on
//!   write-path faults, with probe-driven recovery and a `Draining` terminal
//!   state for shutdown;
//! * [`chaos`] — a deterministic chaos proxy severing and delaying
//!   connections at scripted chunk ordinals, for crash/retry sweeps;
//! * [`repl`] — a replicated tier on the shared WAL framing: a primary
//!   streams committed WAL groups to replicas over the same wire protocol
//!   (snapshot catch-up included), [`repl::ReplicationMode::SemiSync`] gates
//!   acknowledgements on replica acks, and
//!   [`server::ServerHandle::promote`] fails over to a replica with the
//!   dedup windows rebuilt from durable markers — zero acked loss, zero
//!   double-apply across the switch.

pub mod batcher;
pub mod chaos;
pub mod client;
pub mod dedup;
pub mod health;
pub mod protocol;
pub mod queue;
pub mod repl;
pub mod server;

pub use batcher::{AdaptiveWindow, Batcher, BatcherConfig};
pub use chaos::{ChaosProxy, ChaosScript};
pub use client::{Client, ClientOptions, ClientStats};
pub use dedup::{DedupWindow, PROBE_KEY, RESERVED_KEY_BASE};
pub use health::{Health, HealthState, Role};
pub use protocol::{
    decode_error, encode_error, ErrorCode, FrameError, Request, Response, MAX_FRAME_BYTES,
};
pub use queue::{AdmissionQueue, Pending, Work};
pub use repl::{ReplicationClient, ReplicationHub, ReplicationMode};
pub use server::{ServerBuilder, ServerHandle, DEFAULT_QUEUE_CAPACITY};
