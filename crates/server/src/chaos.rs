//! Deterministic connection chaos: a TCP proxy that severs and delays
//! traffic at scripted points.
//!
//! Time-based fault injection makes flaky tests; like the storage layer's
//! `CrashClock` (which kills by *sync ordinal*), [`ChaosProxy`] scripts
//! faults by **chunk ordinal** — a global counter of ≤1 KiB forwarding
//! chunks across both directions of every proxied connection. The same
//! script against the same workload severs at the same byte positions every
//! run, including *mid-frame* (half a chunk forwarded, then the connection
//! is torn down both ways), which is exactly the case a length-prefixed
//! protocol and a retrying client must survive.
//!
//! Compose it with the storage fault devices for end-to-end sweeps: the
//! proxy breaks the wire while `FailingDevice` / `CrashDevice` break the
//! store underneath the server.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Forwarding chunk size; one ordinal per chunk.
const CHUNK: usize = 1024;

/// What the proxy does to the traffic. Ordinals are global across both
/// directions and all connections, 1-based, in forwarding order.
#[derive(Debug, Clone, Default)]
pub struct ChaosScript {
    kill_points: Vec<u64>,
    mid_frame: bool,
    delay: Duration,
}

impl ChaosScript {
    /// Forward everything untouched.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sever the connection carrying the `points`-th chunks (1-based global
    /// chunk ordinals).
    pub fn sever_at(points: Vec<u64>) -> Self {
        Self {
            kill_points: points,
            ..Self::default()
        }
    }

    /// `faults` kill points with deterministic pseudo-random gaps in
    /// `[min_gap, max_gap]` chunks, derived from `seed`.
    pub fn seeded(seed: u64, faults: usize, min_gap: u64, max_gap: u64) -> Self {
        let min_gap = min_gap.max(1);
        let max_gap = max_gap.max(min_gap);
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut points = Vec::with_capacity(faults);
        let mut at = 0u64;
        for _ in 0..faults {
            at += min_gap + next() % (max_gap - min_gap + 1);
            points.push(at);
        }
        Self {
            kill_points: points,
            ..Self::default()
        }
    }

    /// Sever *inside* the fatal chunk: forward half of it, then kill — the
    /// peer observes a torn frame, not a clean boundary.
    pub fn mid_frame(mut self, on: bool) -> Self {
        self.mid_frame = on;
        self
    }

    /// Sleep this long before forwarding every chunk (models a slow or
    /// congested link; stacks deadline pressure on the client).
    pub fn delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }
}

#[derive(Default)]
struct Counters {
    chunks: AtomicU64,
    severed: AtomicU64,
    delayed: AtomicU64,
}

/// A scripted man-in-the-middle between clients and one upstream server.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listen on an ephemeral local port and forward every connection to
    /// `upstream` under `script`.
    pub fn spawn(upstream: SocketAddr, script: ChaosScript) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let script = Arc::new(script);

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_counters = Arc::clone(&counters);
        let accept = thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || {
                for inbound in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = inbound else { continue };
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    spawn_pumps(
                        client,
                        server,
                        Arc::clone(&script),
                        Arc::clone(&accept_counters),
                    );
                }
            })?;

        Ok(Self {
            local_addr,
            shutdown,
            counters,
            accept: Some(accept),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Chunks forwarded so far (the ordinal clock).
    pub fn chunks(&self) -> u64 {
        self.counters.chunks.load(Ordering::SeqCst)
    }

    /// Connections severed by the script.
    pub fn severed(&self) -> u64 {
        self.counters.severed.load(Ordering::SeqCst)
    }

    /// Chunks that were delayed before forwarding.
    pub fn delayed(&self) -> u64 {
        self.counters.delayed.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the accept thread. Live pump threads die with
    /// their sockets.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Both directions of one proxied connection, each on its own thread.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    script: Arc<ChaosScript>,
    counters: Arc<Counters>,
) {
    let pair = |from: &TcpStream, to: &TcpStream| -> Option<(TcpStream, TcpStream)> {
        Some((from.try_clone().ok()?, to.try_clone().ok()?))
    };
    let Some(up) = pair(&client, &server) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    let Some(down) = pair(&server, &client) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    for (name, (from, to)) in [("chaos-up", up), ("chaos-down", down)] {
        let script = Arc::clone(&script);
        let counters = Arc::clone(&counters);
        let both = (client.try_clone().ok(), server.try_clone().ok());
        let _ = thread::Builder::new()
            .name(name.into())
            .spawn(move || pump(from, to, &script, &counters, both));
    }
}

/// Copy chunks from `from` to `to`, consulting the script at each global
/// ordinal. On a kill point: optionally forward half the chunk, then tear
/// down both sides of the proxied connection.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    script: &ChaosScript,
    counters: &Counters,
    both: (Option<TcpStream>, Option<TcpStream>),
) {
    let mut buf = [0u8; CHUNK];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let ordinal = counters.chunks.fetch_add(1, Ordering::SeqCst) + 1;
        if !script.delay.is_zero() {
            counters.delayed.fetch_add(1, Ordering::SeqCst);
            thread::sleep(script.delay);
        }
        if script.kill_points.contains(&ordinal) {
            if script.mid_frame && n > 1 {
                let _ = to.write_all(&buf[..n / 2]);
                let _ = to.flush();
            }
            counters.severed.fetch_add(1, Ordering::SeqCst);
            let (c, s) = &both;
            if let Some(c) = c {
                let _ = c.shutdown(Shutdown::Both);
            }
            if let Some(s) = s {
                let _ = s.shutdown(Shutdown::Both);
            }
            break;
        }
        if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
            break;
        }
    }
    // Propagate EOF so the other side's read loop unblocks.
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A line-echo upstream: reads lines, echoes them back.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {
                                if line.trim() == "quit" {
                                    return; // leaves the listener loop alive
                                }
                                if writer.write_all(line.as_bytes()).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, h)
    }

    #[test]
    fn clean_script_forwards_transparently() {
        let (upstream, _h) = echo_server();
        let mut proxy = ChaosProxy::spawn(upstream, ChaosScript::none()).unwrap();
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for i in 0..5 {
            writeln!(writer, "hello {i}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), format!("hello {i}"));
        }
        assert!(proxy.chunks() >= 10, "both directions count chunks");
        assert_eq!(proxy.severed(), 0);
        proxy.shutdown();
    }

    #[test]
    fn scripted_kill_point_severs_the_connection() {
        let (upstream, _h) = echo_server();
        // Chunks: 1 = request "first", 2 = its echo, 3 = request "second",
        // 4 = its echo — killed.
        let mut proxy = ChaosProxy::spawn(upstream, ChaosScript::sever_at(vec![4])).unwrap();
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "first").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "first");
        writeln!(writer, "second").unwrap();
        line.clear();
        // The echo of "second" is chunk 2: severed, so we see EOF or reset.
        let got = reader.read_line(&mut line);
        assert!(
            matches!(got, Ok(0) | Err(_)),
            "expected severed connection, got {line:?}"
        );
        assert_eq!(proxy.severed(), 1);

        // A fresh connection works again (kill point already consumed).
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "after").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "after");
        proxy.shutdown();
    }

    #[test]
    fn seeded_scripts_are_deterministic_and_spaced() {
        let a = ChaosScript::seeded(7, 5, 3, 9);
        let b = ChaosScript::seeded(7, 5, 3, 9);
        assert_eq!(a.kill_points, b.kill_points);
        let c = ChaosScript::seeded(8, 5, 3, 9);
        assert_ne!(a.kill_points, c.kill_points, "seed changes the script");
        let mut prev = 0;
        for &p in &a.kill_points {
            assert!(p - prev >= 3 && p - prev <= 9);
            prev = p;
        }
    }
}
