//! Blocking client for the MLKV serving protocol, with deadline budgets and
//! idempotent retries.
//!
//! One request in flight at a time per connection; the server echoes the
//! request id, which the client checks. Server-side rejections come back as
//! the same typed [`StorageError`] variants the server raised, so callers
//! handle a loopback server exactly like an embedded table.
//!
//! ## Fault tolerance
//!
//! [`ClientOptions`] turns the client into a retrying one:
//!
//! * the per-request deadline is a **budget**: socket connect/read/write
//!   timeouts are derived from what is left of it, every retry sleeps no
//!   longer than the remainder, and exhaustion surfaces as the same
//!   [`StorageError::DeadlineExceeded`] the server would raise;
//! * **retryable** failures — connection drops (reset/aborted/broken
//!   pipe/EOF mid-response), refused reconnects, [`StorageError::Overloaded`]
//!   and [`StorageError::Unavailable`] — are retried up to
//!   [`ClientOptions::max_retries`] times with capped exponential backoff and
//!   deterministic jitter, reconnecting as needed. An `Unavailable` carries
//!   the server's `retry_after` hint, which floors the backoff. Everything
//!   else (invalid arguments, corruption, shutdown) is terminal;
//! * a non-zero [`ClientOptions::session_id`] makes retried mutations
//!   **idempotent**: the request id is preserved across attempts and the
//!   server deduplicates on `(session_id, id)`, so a retry whose original
//!   attempt was applied-but-unacknowledged is acknowledged, not re-applied;
//! * when the address resolves to **multiple endpoints** (a primary and its
//!   replicas), the client remembers which endpoint last answered and, on a
//!   typed `Unavailable` rejection, rotates to the next one before retrying —
//!   so an apply that lands on a replica (or a just-killed primary) re-resolves
//!   to the promoted endpoint, and the preserved request id dedups across the
//!   failover.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use mlkv_storage::{StorageError, StorageResult};

use crate::protocol::{decode_error, read_frame, write_frame, ErrorCode, Request, Response};

/// Retry, timeout, and idempotency knobs for [`Client::connect_with`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Cap on each (re)connect attempt (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Default per-request deadline budget when the call site passes `None`.
    pub request_timeout: Option<Duration>,
    /// Retries after the first attempt (0 = fail fast, the old behaviour).
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff_initial: Duration,
    /// Upper clamp for the exponential backoff.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Idempotency session (`0` = none): mutations carry it so server-side
    /// dedup makes retries exactly-once.
    pub session_id: u64,
    /// First request id; ids increase from here (must be ≥ 1).
    pub first_request_id: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            request_timeout: None,
            max_retries: 0,
            backoff_initial: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
            session_id: 0,
            first_request_id: 1,
        }
    }
}

impl ClientOptions {
    /// A retrying, idempotent configuration: `session_id` for exactly-once
    /// mutations and `max_retries` attempts over dropped connections.
    pub fn retrying(session_id: u64, max_retries: u32) -> Self {
        Self {
            session_id,
            max_retries,
            ..Self::default()
        }
    }

    /// Defaults with the `MLKV_RETRY_MAX` / `MLKV_RETRY_BACKOFF_MS` /
    /// `MLKV_RETRY_BACKOFF_CAP_MS` environment knobs applied (see
    /// [`mlkv_storage::FaultTuning`]), so a deployment can turn on retries
    /// without a code change. The idempotency session stays `0` — sessions
    /// are per-client identities, not deployment tuning.
    pub fn from_env() -> Self {
        let tuning = mlkv_storage::FaultTuning::from_env();
        Self {
            max_retries: tuning.retry_max,
            backoff_initial: Duration::from_millis(tuning.retry_backoff_ms),
            backoff_cap: Duration::from_millis(tuning.retry_backoff_cap_ms),
            ..Self::default()
        }
    }
}

/// Counters a test (or an operator log line) can read back after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Request attempts, including first tries.
    pub attempts: u64,
    /// Attempts beyond the first, across all requests.
    pub retries: u64,
    /// Connections (re-)established after the initial connect.
    pub reconnects: u64,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A blocking connection to an `mlkv-server`.
pub struct Client {
    addrs: Vec<SocketAddr>,
    /// Index of the endpoint the current/last connection reached; connection
    /// attempts start here so the client sticks to a discovered primary.
    addr_cursor: usize,
    conn: Option<Conn>,
    opts: ClientOptions,
    next_id: u64,
    stats: ClientStats,
    rng: u64,
}

impl Client {
    /// Connect with default options (no retries, no session).
    pub fn connect(addr: impl ToSocketAddrs) -> StorageResult<Self> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connect with explicit retry/timeout/idempotency options.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: ClientOptions) -> StorageResult<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(StorageError::Io)?.collect();
        if addrs.is_empty() {
            return Err(StorageError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        let next_id = opts.first_request_id.max(1);
        let rng = opts.jitter_seed | 1;
        let mut client = Self {
            addrs,
            addr_cursor: 0,
            conn: None,
            opts,
            next_id,
            stats: ClientStats::default(),
            rng,
        };
        client.conn = Some(client.open_conn()?);
        Ok(client)
    }

    /// The idempotency session this client stamps on mutations (0 = none).
    pub fn session_id(&self) -> u64 {
        self.opts.session_id
    }

    /// The id the next request will use.
    pub fn next_request_id(&self) -> u64 {
        self.next_id
    }

    /// Attempt/retry/reconnect counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    fn open_conn(&mut self) -> StorageResult<Conn> {
        let mut last = io::Error::other("no address to connect to");
        // Start at the cursor (the endpoint that last answered, or the one a
        // rotation skipped to) and wrap around the whole list, so a dead
        // primary falls through to its replicas.
        for step in 0..self.addrs.len() {
            let idx = (self.addr_cursor + step) % self.addrs.len();
            let addr = self.addrs[idx];
            let attempt = match self.opts.connect_timeout {
                Some(t) => TcpStream::connect_timeout(&addr, t),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true).map_err(StorageError::Io)?;
                    let reader = BufReader::new(stream.try_clone().map_err(StorageError::Io)?);
                    self.addr_cursor = idx;
                    return Ok(Conn {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) => last = e,
            }
        }
        Err(StorageError::Io(last))
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// One attempt over the current (or a fresh) connection. Transport
    /// failures tear the connection down so the next attempt reconnects;
    /// typed server errors keep it.
    fn attempt(
        &mut self,
        request: &Request,
        remaining: Option<Duration>,
    ) -> StorageResult<Response> {
        if self.conn.is_none() {
            let conn = self.open_conn()?;
            self.conn = Some(conn);
            self.stats.reconnects += 1;
        }
        let result = (|| -> io::Result<Option<Vec<u8>>> {
            let conn = self.conn.as_mut().expect("connection just ensured");
            conn.writer.set_write_timeout(remaining)?;
            conn.reader.get_ref().set_read_timeout(remaining)?;
            write_frame(&mut conn.writer, &request.encode())?;
            conn.writer.flush()?;
            read_frame(&mut conn.reader)
        })();
        match result {
            Ok(Some(body)) => Response::decode(&body).map_err(|e| {
                // A frame that decodes wrong means the stream is unusable.
                self.conn = None;
                StorageError::Io(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }),
            Ok(None) => {
                // Clean EOF where a response was owed: the connection died
                // (server crash, proxy sever) — retryable transport loss.
                self.conn = None;
                Err(StorageError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response",
                )))
            }
            Err(e) => {
                self.conn = None;
                Err(StorageError::Io(e))
            }
        }
    }

    /// Run one logical request to completion under the deadline budget,
    /// retrying retryable failures. The request is rebuilt each attempt so
    /// its wire deadline reflects the remaining budget; its id never changes.
    fn call(
        &mut self,
        deadline: Option<Duration>,
        build: &dyn Fn(u64) -> Request,
    ) -> StorageResult<Response> {
        let deadline = deadline.or(self.opts.request_timeout);
        let deadline_us = deadline_to_us(deadline);
        let deadline_at = deadline.map(|d| Instant::now() + d);
        let mut backoff = self.opts.backoff_initial.max(Duration::from_micros(1));
        let mut attempts_left = self.opts.max_retries;
        loop {
            let remaining = match deadline_at {
                Some(at) => match at.checked_duration_since(Instant::now()) {
                    Some(r) if !r.is_zero() => Some(r),
                    _ => return Err(StorageError::DeadlineExceeded { deadline_us }),
                },
                None => None,
            };
            self.stats.attempts += 1;
            let request = build(remaining.map_or(0, deadline_to_some_us));
            let err = match self.attempt(&request, remaining) {
                // Typed back-pressure is part of the retry contract: fold the
                // server's own Unavailable/Overloaded rejections into the
                // retry loop (a degraded primary heals, a replica gets
                // promoted, a full queue drains). Other typed errors are
                // semantic and flow back to the caller as responses.
                Ok(Response::Error { code, message, .. })
                    if matches!(code, ErrorCode::Unavailable | ErrorCode::Overloaded) =>
                {
                    decode_error(code, &message)
                }
                Ok(response) => return Ok(response),
                Err(err) => err,
            };
            if attempts_left == 0 || !is_retryable(&err) {
                return Err(surface_timeout(err, deadline_us));
            }
            attempts_left -= 1;
            self.stats.retries += 1;
            // A typed `Unavailable` from one endpoint of a multi-endpoint
            // client usually means "wrong role" (a replica, or a degraded
            // primary) — rotate so the retry tries the next endpoint instead
            // of hammering the same one.
            if self.addrs.len() > 1 && matches!(err, StorageError::Unavailable { .. }) {
                self.conn = None;
                self.addr_cursor = (self.addr_cursor + 1) % self.addrs.len();
            }
            // An Unavailable hint floors the backoff; the remaining budget
            // caps the sleep so retries never outlive the deadline.
            let hint = match &err {
                StorageError::Unavailable { retry_after_ms } => {
                    Duration::from_millis(*retry_after_ms)
                }
                _ => Duration::ZERO,
            };
            let mut sleep = jitter(backoff.max(hint), &mut self.rng);
            if let Some(at) = deadline_at {
                sleep = sleep.min(at.saturating_duration_since(Instant::now()));
            }
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
            backoff = (backoff * 2).min(self.opts.backoff_cap.max(backoff));
        }
    }

    /// Round-trip a ping.
    pub fn ping(&mut self) -> StorageResult<()> {
        match self.call(None, &|_| Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch embeddings for `keys`, optionally bounded by `deadline` (the
    /// budget covers retries, queueing, and the fused storage call).
    pub fn gather(
        &mut self,
        keys: &[u64],
        deadline: Option<Duration>,
    ) -> StorageResult<Vec<Vec<f32>>> {
        let id = self.fresh_id();
        let keys = keys.to_vec();
        match self.call(deadline, &move |deadline_us| Request::Gather {
            id,
            deadline_us,
            keys: keys.clone(),
        })? {
            Response::Rows { id: got, rows, .. } if got == id => Ok(rows),
            Response::Error {
                id: got,
                code,
                message,
            } if got == id || got == 0 => Err(decode_error(code, &message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Apply gradients with learning rate `lr` under an optional deadline.
    pub fn apply_gradients(
        &mut self,
        updates: &[(u64, Vec<f32>)],
        lr: f32,
        deadline: Option<Duration>,
    ) -> StorageResult<()> {
        let id = self.fresh_id();
        self.apply_with_id(id, updates, lr, deadline)
    }

    /// Apply gradients under an explicit request id — the replay half of the
    /// idempotency contract: after a reconnect (even to a restarted server),
    /// re-issuing an unacknowledged mutation with its *original* id lets the
    /// server dedup it against the durable marker.
    pub fn apply_with_id(
        &mut self,
        id: u64,
        updates: &[(u64, Vec<f32>)],
        lr: f32,
        deadline: Option<Duration>,
    ) -> StorageResult<()> {
        self.next_id = self.next_id.max(id + 1);
        let dim = updates.first().map_or(0, |(_, g)| g.len()) as u32;
        let session_id = self.opts.session_id;
        let updates = updates.to_vec();
        match self.call(deadline, &move |deadline_us| Request::Apply {
            id,
            session_id,
            deadline_us,
            lr,
            dim,
            updates: updates.clone(),
        })? {
            Response::Applied { id: got } if got == id => Ok(()),
            Response::Error {
                id: got,
                code,
                message,
            } if got == id || got == 0 => Err(decode_error(code, &message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down gracefully (drain + flush). The server
    /// acknowledges before it starts draining. Never retried.
    pub fn shutdown_server(&mut self) -> StorageResult<()> {
        match self.attempt(&Request::Shutdown, self.opts.request_timeout)? {
            Response::ShutdownStarted => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn deadline_to_us(deadline: Option<Duration>) -> u64 {
    deadline.map_or(0, deadline_to_some_us)
}

fn deadline_to_some_us(d: Duration) -> u64 {
    d.as_micros().clamp(1, u64::MAX as u128) as u64
}

/// Failures worth retrying: typed back-pressure from the server, and
/// transport-level connection loss (including refused reconnects while a
/// server restarts). Semantic failures are terminal.
fn is_retryable(err: &StorageError) -> bool {
    match err {
        StorageError::Overloaded { .. } | StorageError::Unavailable { .. } => true,
        StorageError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::ConnectionRefused
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::NotConnected
                | io::ErrorKind::TimedOut
                | io::ErrorKind::WouldBlock
        ),
        _ => false,
    }
}

/// A socket timeout is the deadline budget running out mid-I/O; surface it as
/// the typed deadline error rather than a raw I/O failure.
fn surface_timeout(err: StorageError, deadline_us: u64) -> StorageError {
    match &err {
        StorageError::Io(e)
            if deadline_us > 0
                && matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
        {
            StorageError::DeadlineExceeded { deadline_us }
        }
        _ => err,
    }
}

/// Deterministic jitter: scale `base` by a splitmix-derived factor in
/// `[0.5, 1.0)`, so concurrent retriers spread out without randomness that
/// would break reproducible tests.
fn jitter(base: Duration, rng: &mut u64) -> Duration {
    *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let factor = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
    base.mul_f64(factor)
}

fn unexpected(response: &Response) -> StorageError {
    StorageError::Io(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {response:?}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(is_retryable(&StorageError::Overloaded {
            depth: 1,
            capacity: 1
        }));
        assert!(is_retryable(&StorageError::Unavailable {
            retry_after_ms: 9
        }));
        assert!(is_retryable(&StorageError::Io(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "x"
        ))));
        assert!(!is_retryable(&StorageError::Closed));
        assert!(!is_retryable(&StorageError::InvalidArgument("x".into())));
        assert!(!is_retryable(&StorageError::Corruption("x".into())));
        assert!(!is_retryable(&StorageError::Io(io::Error::other("x"))));
    }

    #[test]
    fn jitter_stays_within_half_to_full_base() {
        let mut rng = 1u64;
        let base = Duration::from_millis(100);
        for _ in 0..1000 {
            let j = jitter(base, &mut rng);
            assert!(j >= base / 2 && j < base, "{j:?}");
        }
        // Deterministic: the same seed replays the same sequence.
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..10 {
            assert_eq!(jitter(base, &mut a), jitter(base, &mut b));
        }
    }

    #[test]
    fn socket_timeouts_surface_as_deadline_exceeded() {
        let timed_out = StorageError::Io(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(matches!(
            surface_timeout(timed_out, 500),
            StorageError::DeadlineExceeded { deadline_us: 500 }
        ));
        let reset = StorageError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "r"));
        assert!(matches!(surface_timeout(reset, 500), StorageError::Io(_)));
        let no_deadline = StorageError::Io(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(
            matches!(surface_timeout(no_deadline, 0), StorageError::Io(_)),
            "without a budget a timeout stays an I/O error"
        );
    }
}
