//! Blocking client for the MLKV serving protocol.
//!
//! One request in flight at a time per connection; the server echoes the
//! request id, which the client checks. Server-side rejections come back as
//! the same typed [`StorageError`] variants the server raised, so callers
//! handle a loopback server exactly like an embedded table.

use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mlkv_storage::{StorageError, StorageResult};

use crate::protocol::{read_frame, write_frame, ErrorCode, Request, Response};

/// A blocking connection to an `mlkv-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> StorageResult<Self> {
        let stream = TcpStream::connect(addr).map_err(StorageError::Io)?;
        stream.set_nodelay(true).map_err(StorageError::Io)?;
        let reader = BufReader::new(stream.try_clone().map_err(StorageError::Io)?);
        Ok(Self {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    fn roundtrip(&mut self, request: &Request) -> StorageResult<Response> {
        let body = request.encode();
        write_frame(&mut self.writer, &body).map_err(StorageError::Io)?;
        self.writer.flush().map_err(StorageError::Io)?;
        match read_frame(&mut self.reader).map_err(StorageError::Io)? {
            Some(body) => Response::decode(&body).map_err(|e| {
                StorageError::Io(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }),
            None => Err(StorageError::Closed),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Round-trip a ping.
    pub fn ping(&mut self) -> StorageResult<()> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch embeddings for `keys`, optionally bounded by `deadline` (the
    /// server rejects work it cannot start within the budget).
    pub fn gather(
        &mut self,
        keys: &[u64],
        deadline: Option<Duration>,
    ) -> StorageResult<Vec<Vec<f32>>> {
        let id = self.fresh_id();
        let request = Request::Gather {
            id,
            deadline_us: deadline_to_us(deadline),
            keys: keys.to_vec(),
        };
        match self.roundtrip(&request)? {
            Response::Rows { id: got, rows, .. } if got == id => Ok(rows),
            Response::Error {
                id: got,
                code,
                message,
            } if got == id || got == 0 => Err(decode_error(code, &message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Apply gradients with learning rate `lr` under an optional deadline.
    pub fn apply_gradients(
        &mut self,
        updates: &[(u64, Vec<f32>)],
        lr: f32,
        deadline: Option<Duration>,
    ) -> StorageResult<()> {
        let dim = updates.first().map_or(0, |(_, g)| g.len()) as u32;
        let id = self.fresh_id();
        let request = Request::Apply {
            id,
            deadline_us: deadline_to_us(deadline),
            lr,
            dim,
            updates: updates.to_vec(),
        };
        match self.roundtrip(&request)? {
            Response::Applied { id: got } if got == id => Ok(()),
            Response::Error {
                id: got,
                code,
                message,
            } if got == id || got == 0 => Err(decode_error(code, &message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down gracefully (drain + flush). The server
    /// acknowledges before it starts draining.
    pub fn shutdown_server(&mut self) -> StorageResult<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownStarted => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn deadline_to_us(deadline: Option<Duration>) -> u64 {
    deadline.map_or(0, |d| d.as_micros().clamp(1, u64::MAX as u128) as u64)
}

/// Map a wire error code back onto the typed storage error the server raised.
fn decode_error(code: ErrorCode, message: &str) -> StorageError {
    match code {
        ErrorCode::DeadlineExceeded => StorageError::DeadlineExceeded {
            deadline_us: parse_first_uint(message).unwrap_or(0),
        },
        ErrorCode::Overloaded => {
            let mut nums = uints(message);
            StorageError::Overloaded {
                depth: nums.next().unwrap_or(0) as usize,
                capacity: nums.next().unwrap_or(0) as usize,
            }
        }
        ErrorCode::Malformed => StorageError::InvalidArgument(format!("server: {message}")),
        ErrorCode::ShuttingDown => StorageError::Closed,
        ErrorCode::Storage => StorageError::Io(io::Error::other(format!("server: {message}"))),
    }
}

fn uints(s: &str) -> impl Iterator<Item = u64> + '_ {
    s.split(|c: char| !c.is_ascii_digit())
        .filter(|t| !t.is_empty())
        .filter_map(|t| t.parse().ok())
}

fn parse_first_uint(s: &str) -> Option<u64> {
    uints(s).next()
}

fn unexpected(response: &Response) -> StorageError {
    StorageError::Io(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {response:?}"),
    ))
}
