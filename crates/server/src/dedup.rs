//! Exactly-once bookkeeping for mutating requests: the per-session dedup
//! window and its durable store-resident markers.
//!
//! A client that retries an `apply_gradients` after a lost acknowledgement
//! must not have the gradient applied twice. The server keeps two records of
//! "the highest request id acknowledged per session":
//!
//! * an **in-memory window** ([`DedupWindow`]) the batcher consults on every
//!   mutation — a fixed-size direct-mapped table, one slot per
//!   `session_id % slots`;
//! * a **durable marker** per slot, written as an ordinary store record at a
//!   reserved key *in the same fused `multi_rmw` batch* as the gradients it
//!   acknowledges. Engine batch atomicity (one WAL group append, one journal
//!   commit group) then guarantees the marker is durable iff the gradients
//!   are — across crash and recovery, not just process lifetime.
//!
//! On `serve()` the window is rebuilt from the markers
//! ([`DedupWindow::recover`]), so a retry that lands on a restarted server is
//! still acknowledged from the window instead of re-applied.
//!
//! Reserved keys live at the very top of the key space
//! ([`RESERVED_KEY_BASE`]`..=u64::MAX`); the server rejects client requests
//! that touch them, so markers can never collide with embedding rows.

use std::sync::Mutex;

use mlkv_storage::KvStore;

/// First key of the reserved range. Everything at or above this is server
/// metadata (dedup markers, health probes), never an embedding row.
pub const RESERVED_KEY_BASE: u64 = 0xFFFF_FFFF_0000_0000;

/// Key the health probe writes through the full WAL/commit path to test
/// whether a degraded store has recovered.
pub const PROBE_KEY: u64 = u64::MAX;

/// True when `key` falls in the server-reserved metadata range.
pub fn is_reserved_key(key: u64) -> bool {
    key >= RESERVED_KEY_BASE
}

/// Fixed-size direct-mapped window of `(session_id, last acked request id)`
/// pairs. Two sessions hashing to the same slot evict each other — safe,
/// because eviction only *loses* dedup information, degrading a retry to a
/// re-apply of work the evicting session already superseded in the durable
/// marker; it never acknowledges work that did not happen.
pub struct DedupWindow {
    slots: Mutex<Vec<Option<(u64, u64)>>>,
}

impl DedupWindow {
    /// A window with `slots` entries (clamped ≥ 1).
    pub fn new(slots: usize) -> Self {
        Self {
            slots: Mutex::new(vec![None; slots.max(1)]),
        }
    }

    /// Number of slots (= number of reserved marker keys in use).
    pub fn slot_count(&self) -> usize {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The reserved store key holding the durable marker for `session_id`.
    pub fn slot_key(&self, session_id: u64) -> u64 {
        RESERVED_KEY_BASE + session_id % self.slot_count() as u64
    }

    /// True when `(session_id, request_id)` was already acknowledged: the
    /// session owns its slot and acked an id ≥ `request_id` (ids are unique
    /// and increasing per session, so ≤ the high-water mark means "seen").
    pub fn already_acked(&self, session_id: u64, request_id: u64) -> bool {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let idx = (session_id % slots.len() as u64) as usize;
        matches!(slots[idx], Some((s, last)) if s == session_id && request_id <= last)
    }

    /// Record an acknowledgement. Keeps the high-water mark for the owning
    /// session; a different session taking the slot overwrites (eviction).
    pub fn record(&self, session_id: u64, request_id: u64) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let idx = (session_id % slots.len() as u64) as usize;
        slots[idx] = match slots[idx] {
            Some((s, last)) if s == session_id => Some((s, last.max(request_id))),
            _ => Some((session_id, request_id)),
        };
    }

    /// The durable marker for an acknowledgement, as a `(key, value)` pair to
    /// ride in the same fused batch as the gradients it covers.
    pub fn marker_tag(&self, session_id: u64, request_id: u64) -> (u64, Vec<u8>) {
        (
            self.slot_key(session_id),
            encode_marker(session_id, request_id),
        )
    }

    /// Rebuild the window from the durable markers (one `multi_get` over the
    /// reserved slot keys). Missing keys are empty slots; undecodable values
    /// are ignored rather than trusted. Returns how many slots were restored.
    pub fn recover(&self, store: &dyn KvStore) -> usize {
        let slot_count = self.slot_count();
        let keys: Vec<u64> = (0..slot_count as u64)
            .map(|i| RESERVED_KEY_BASE + i)
            .collect();
        let mut restored = 0;
        let results = store.multi_get(&keys);
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        for (idx, result) in results.into_iter().enumerate() {
            if let Ok(value) = result {
                if let Some((session_id, request_id)) = decode_marker(&value) {
                    slots[idx] = Some((session_id, request_id));
                    restored += 1;
                }
            }
        }
        restored
    }
}

/// 16-byte marker value: `session_id` LE ‖ `request_id` LE.
pub fn encode_marker(session_id: u64, request_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&session_id.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out
}

/// Decode a marker value; `None` when it is not a 16-byte marker.
pub fn decode_marker(value: &[u8]) -> Option<(u64, u64)> {
    if value.len() != 16 {
        return None;
    }
    let session_id = u64::from_le_bytes(value[..8].try_into().ok()?);
    let request_id = u64::from_le_bytes(value[8..].try_into().ok()?);
    Some((session_id, request_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::MemStore;

    #[test]
    fn reserved_range_starts_where_documented() {
        assert!(!is_reserved_key(RESERVED_KEY_BASE - 1));
        assert!(is_reserved_key(RESERVED_KEY_BASE));
        assert!(is_reserved_key(PROBE_KEY));
    }

    #[test]
    fn window_tracks_high_water_mark_per_session() {
        let w = DedupWindow::new(8);
        assert!(!w.already_acked(3, 1));
        w.record(3, 5);
        assert!(w.already_acked(3, 5));
        assert!(w.already_acked(3, 4), "ids below the mark are acked");
        assert!(!w.already_acked(3, 6));
        w.record(3, 2);
        assert!(w.already_acked(3, 5), "stale record cannot lower the mark");
    }

    #[test]
    fn colliding_session_evicts_but_never_falsely_acks() {
        let w = DedupWindow::new(4);
        // 1 and 5 share slot 1 (mod 4).
        w.record(1, 10);
        w.record(5, 3);
        assert!(!w.already_acked(1, 10), "evicted session is forgotten");
        assert!(w.already_acked(5, 3));
    }

    #[test]
    fn marker_roundtrip_and_rejects_foreign_values() {
        let m = encode_marker(7, 42);
        assert_eq!(m.len(), 16);
        assert_eq!(decode_marker(&m), Some((7, 42)));
        assert_eq!(decode_marker(&m[..15]), None);
        assert_eq!(decode_marker(&[0u8; 17]), None);
    }

    #[test]
    fn recover_rebuilds_window_from_store_markers() {
        let store = MemStore::new();
        let w = DedupWindow::new(4);
        let (k, v) = w.marker_tag(6, 9);
        assert_eq!(k, RESERVED_KEY_BASE + 2);
        store.put(k, &v).unwrap();
        // A non-marker value in another reserved slot must be skipped.
        store.put(RESERVED_KEY_BASE, b"not a marker").unwrap();

        let fresh = DedupWindow::new(4);
        assert_eq!(fresh.recover(&store), 1);
        assert!(fresh.already_acked(6, 9));
        assert!(fresh.already_acked(6, 8));
        assert!(!fresh.already_acked(6, 10));
    }
}
