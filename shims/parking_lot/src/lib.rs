//! Offline stand-in for the `parking_lot` crate.
//!
//! The build image has no registry access, so this shim provides the
//! `parking_lot` API subset the workspace uses — `Mutex` and `RwLock` whose
//! guard-returning methods do not return poison `Result`s — implemented over
//! `std::sync`. Poisoned locks are recovered transparently instead of
//! panicking, matching `parking_lot`'s no-poisoning semantics closely enough
//! for this workspace (a poisoned `std` lock only arises after a panic that
//! would already have failed the test or benchmark holding it).

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive: `parking_lot::Mutex` API over `std::sync::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

/// Reader-writer lock: `parking_lot::RwLock` API over `std::sync::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
