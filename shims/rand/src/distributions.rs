//! Standard and range-uniform sampling used by [`Rng::gen`](crate::Rng::gen)
//! and [`Rng::gen_range`](crate::Rng::gen_range).

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Types samplable from the "standard" distribution: uniform over the whole
/// range for integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::sample_standard(rng)) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let value = self.start + <$t>::sample_standard(rng) * (self.end - self.start);
                // Rounding can land exactly on `end` when the span is within a
                // few ulps of `start`; keep the contract half-open.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);
