//! Concrete generators. `SmallRng` is the only one this workspace uses.

use crate::{RngCore, SeedableRng};

/// Step a SplitMix64 state, returning the next output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small, fast, non-cryptographic generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so that nearby seeds (0, 1, 2, ...) diverge immediately.
        let mut state = seed ^ 0x5851_F42D_4C95_7F2D;
        splitmix64(&mut state);
        Self { state }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// Alias: the workspace never needs a cryptographically strong generator.
pub type StdRng = SmallRng;
