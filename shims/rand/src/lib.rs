//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `Rng::gen` / `Rng::gen_range`, `SeedableRng::seed_from_u64` and
//! `rngs::SmallRng` backed by SplitMix64 — statistically solid for the
//! workloads and tests in this workspace (which assert distributional
//! properties like Zipf skew and training convergence), though not a
//! cryptographic or stream-compatible replacement for the real crate.

pub mod distributions;
pub mod rngs;

use distributions::{SampleRange, StandardSample};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution for `T`
    /// (uniform over the full integer range, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0f32..1.0)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_integer_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let u = rng.gen_range(0..2usize);
            assert!(u < 2);
        }
    }

    #[test]
    fn gen_range_respects_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            sum += f64::from(v);
        }
        // Mean of U(-1, 1) over 10k draws should be near zero.
        assert!((sum / 10_000.0).abs() < 0.05, "biased mean: {sum}");
    }

    #[test]
    fn standard_floats_are_in_unit_interval_and_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            buckets[(v * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "non-uniform bucket: {buckets:?}");
        }
    }

    #[test]
    fn float_gen_range_never_returns_the_exclusive_bound() {
        // A span of one ulp forces the rounding edge case: without the clamp,
        // sampling can land exactly on `end`.
        let mut rng = SmallRng::seed_from_u64(15);
        let (start, end) = (1.0f32, 1.0000001f32);
        for _ in 0..10_000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "out of half-open range: {v}");
        }
    }

    #[test]
    fn bools_are_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(13);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "biased bools: {trues}");
    }
}
