//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the API subset the workspace uses: `crossbeam::channel`'s
//! unbounded multi-producer multi-consumer channel. Implemented as a
//! `Mutex<VecDeque>` + `Condvar`; adequate for the prefetcher's
//! batch-sized messages, though without the real crate's lock-free fast path.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every [`Receiver`] is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] once the channel is closed and drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; never blocks. The shim cannot observe receiver
        /// disconnection, so it always succeeds (the workspace ignores the
        /// result, relying on sender-side shutdown).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all receivers so they observe closure.
                let _guard = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking variant of [`recv`](Self::recv); `None` when empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn values_cross_threads_to_multiple_consumers() {
            let (tx, rx) = unbounded::<u32>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for v in 0..100 {
                tx.send(v).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
