//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` / `iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!` / `criterion_main!`
//! macros — with a simple warm-up-then-measure wall-clock harness. It reports
//! mean time per iteration; it does no statistical outlier analysis and writes
//! no reports to disk. Passing `--test` (as in `cargo bench -- --test`) runs
//! every benchmark exactly once with no warm-up, mirroring real criterion's
//! smoke-test mode; CI uses this to keep benches honest without paying
//! measurement time.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported so `b.iter(|| black_box(...))` patterns work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// How `iter_batched` amortises setup cost. The shim runs one routine call
/// per setup call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// (total measured time, iterations) recorded by the last `iter*` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`, repeating it through a warm-up window and then a
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + self.measurement_time;
        loop {
            black_box(routine());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input)); // warm-up pass
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        // `sample_size` batches, or until the measurement window closes.
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((measured, iters));
    }
}

/// A named collection of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n;
        }
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !self.test_mode {
            self.warm_up_time = d;
        }
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !self.test_mode {
            self.measurement_time = d;
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = self.bencher();
        f(&mut bencher);
        self.report(&id.id, bencher.result);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = self.bencher();
        f(&mut bencher, input);
        self.report(&id.id, bencher.result);
        self
    }

    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        // In test mode the zero warm-up/measurement windows make `iter*` run
        // the routine exactly once and stop.
        Bencher {
            warm_up_time: if self.test_mode {
                Duration::ZERO
            } else {
                self.warm_up_time
            },
            measurement_time: if self.test_mode {
                Duration::ZERO
            } else {
                self.measurement_time
            },
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            result: None,
        }
    }

    fn report(&self, id: &str, result: Option<(Duration, u64)>) {
        match result {
            Some((total, iters)) if iters > 0 => {
                let per_iter = total.as_nanos() / u128::from(iters);
                println!(
                    "{}/{id}: {} per iter ({iters} iters)",
                    self.name,
                    format_ns(per_iter)
                );
            }
            _ => println!("{}/{id}: no measurement recorded", self.name),
        }
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    /// `--test` on the command line (`cargo bench -- --test`): run each
    /// benchmark exactly once with no warm-up, as a smoke test. Mirrors real
    /// criterion's test mode; CI uses it to keep benches compiling and
    /// running without paying measurement time.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
            test_mode,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
