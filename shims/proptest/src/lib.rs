//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map`, `any::<T>()`, range and
//! tuple strategies, `prop_oneof!`, `proptest::collection::{vec, hash_set}`,
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//! Failing cases are reported by ordinary panic with the generated inputs'
//! `Debug` form; there is no shrinking and no persisted failure seeds.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body (plain `assert!`: no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly choose between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...) { .. }`
/// becomes an ordinary test running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($body:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($body)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        concat!(
                            "proptest case {}/{} failed for ", stringify!($name),
                            " with inputs:", $("\n  ", stringify!($arg), " = {:?}",)+
                        ),
                        case + 1, config.cases, $(&$arg),+
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}
