//! Value-generation strategies (no shrinking).

use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Box a strategy for use in heterogeneous collections (see `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice among several strategies with a common value type.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.rng().gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategy that always yields clones of one value (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
