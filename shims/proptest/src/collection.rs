//! Collection strategies: `proptest::collection::{vec, hash_set}`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.sizes.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with element strategy `element` and length in `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    assert!(!sizes.is_empty(), "collection::vec: empty size range");
    VecStrategy { element, sizes }
}

/// Strategy for `HashSet<S::Value>` with a target size drawn from `sizes`.
pub struct HashSetStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.rng().gen_range(self.sizes.clone());
        let mut set = HashSet::with_capacity(target);
        // Bounded attempts: tiny value domains may not admit `target`
        // distinct elements.
        for _ in 0..target.saturating_mul(20).max(64) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// `HashSet` strategy with element strategy `element` and size in `sizes`.
pub fn hash_set<S>(element: S, sizes: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    assert!(!sizes.is_empty(), "collection::hash_set: empty size range");
    HashSetStrategy { element, sizes }
}
