//! Test configuration and the deterministic RNG driving generation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Subset of `proptest::test_runner::ProptestConfig` the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test name so every run of a
/// given test generates the same case sequence (reproducible failures), while
/// different tests explore different sequences.
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    pub fn for_test(test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Access the underlying `rand` generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}
