//! `any::<T>()` — the canonical strategy for a type.

use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite values only, spanning a wide magnitude range.
        rng.rng().gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.rng().gen_range(-1.0e12f64..1.0e12)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`: `any::<u8>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
